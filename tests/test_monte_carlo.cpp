// Tests for the Monte Carlo statistical characterization harness.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/monte_carlo.hpp"

namespace shtrace {
namespace {

CornerFixtureBuilder tspcBuilder() {
    return [](const ProcessCorner& corner) {
        TspcOptions opt;
        opt.corner = corner;
        return buildTspcRegister(opt);
    };
}

TEST(MonteCarlo, SamplingIsDeterministicPerSeedAndIndex) {
    const ProcessCorner nominal = ProcessCorner::typical();
    const ProcessVariation var;
    const ProcessCorner a = sampleCorner(nominal, var, 7, 3);
    const ProcessCorner b = sampleCorner(nominal, var, 7, 3);
    EXPECT_DOUBLE_EQ(a.vtn, b.vtn);
    EXPECT_DOUBLE_EQ(a.kpn, b.kpn);
    EXPECT_DOUBLE_EQ(a.vdd, b.vdd);
    // Different index or seed: different sample.
    const ProcessCorner c = sampleCorner(nominal, var, 7, 4);
    const ProcessCorner d = sampleCorner(nominal, var, 8, 3);
    EXPECT_NE(a.vtn, c.vtn);
    EXPECT_NE(a.vtn, d.vtn);
}

TEST(MonteCarlo, SamplesSpreadAroundTheNominal) {
    const ProcessCorner nominal = ProcessCorner::typical();
    ProcessVariation var;
    var.vtSigma = 0.03;
    double sum = 0.0;
    double sumSq = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const double vt = sampleCorner(nominal, var, 1, i).vtn;
        sum += vt;
        sumSq += vt * vt;
    }
    const double mean = sum / n;
    const double sigma = std::sqrt(sumSq / n - mean * mean);
    EXPECT_NEAR(mean, nominal.vtn, 0.01);
    EXPECT_NEAR(sigma, var.vtSigma, 0.01);
}

TEST(MonteCarlo, CharacterizesDistributionOnTspc) {
    MonteCarloOptions opt;
    opt.samples = 8;  // keep the test quick; each sample is ~6 transients
    SimStats stats;
    const MonteCarloResult mc =
        runMonteCarlo(ProcessCorner::typical(), tspcBuilder(), opt, &stats);
    EXPECT_EQ(mc.samplesRequested, 8);
    ASSERT_GE(mc.samplesConverged, 6);  // allow a rare pathological sample

    // Means near the nominal characterization (204 ps / 147 ps / 472 ps).
    EXPECT_NEAR(mc.setup.mean, 204e-12, 40e-12);
    EXPECT_NEAR(mc.hold.mean, 147e-12, 40e-12);
    EXPECT_NEAR(mc.clockToQ.mean, 472e-12, 100e-12);
    // Variation produces real spread but not chaos.
    EXPECT_GT(mc.setup.stddev, 1e-12);
    EXPECT_LT(mc.setup.stddev, 60e-12);
    EXPECT_LE(mc.setup.min, mc.setup.mean);
    EXPECT_GE(mc.setup.max, mc.setup.mean);
    EXPECT_GT(stats.transientSolves, 0u);
}

TEST(MonteCarlo, ZeroVariationCollapsesTheDistribution) {
    MonteCarloOptions opt;
    opt.samples = 3;
    opt.variation.vtSigma = 0.0;
    opt.variation.kpRelSigma = 0.0;
    opt.variation.vddRelSigma = 0.0;
    const MonteCarloResult mc =
        runMonteCarlo(ProcessCorner::typical(), tspcBuilder(), opt);
    ASSERT_EQ(mc.samplesConverged, 3);
    EXPECT_NEAR(mc.setup.stddev, 0.0, 1e-15);
    EXPECT_NEAR(mc.hold.stddev, 0.0, 1e-15);
}

TEST(MonteCarlo, RejectsZeroSamples) {
    MonteCarloOptions opt;
    opt.samples = 0;
    EXPECT_THROW(
        runMonteCarlo(ProcessCorner::typical(), tspcBuilder(), opt),
        InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
