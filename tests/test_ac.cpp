// Tests for AC small-signal analysis: canonical filter responses and the
// MOSFET small-signal gain, validating the linearization path.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/analysis/ac.hpp"
#include "shtrace/cells/mos_library.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/inductor.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

TEST(LogSweep, CoversDecadesInclusively) {
    const auto f = logSweep(1e3, 1e6, 2);
    ASSERT_GE(f.size(), 7u);
    EXPECT_NEAR(f.front(), 1e3, 1e-9);
    EXPECT_NEAR(f.back(), 1e6, 1.0);
    EXPECT_TRUE(std::is_sorted(f.begin(), f.end()));
    EXPECT_THROW(logSweep(0.0, 1e3), InvalidArgumentError);
}

TEST(Ac, RcLowpassPoleAtMinus3Db) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    const double r = 1e3;
    const double c = 1e-12;
    const double fc = 1.0 / (2.0 * M_PI * r * c);
    auto& src = ckt.add<VoltageSource>("V1", in, kGround, 0.0);
    src.setAcMagnitude(1.0);
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Capacitor>("C1", out, kGround, c);
    ckt.finalize();

    AcOptions opt;
    opt.frequencies = {fc / 100.0, fc, fc * 100.0};
    const AcResult ac = runAcAnalysis(ckt, opt);

    const auto mag = ac.magnitudeDb(out);
    const auto phase = ac.phaseDegrees(out);
    EXPECT_NEAR(mag[0], 0.0, 0.01);      // passband: 0 dB
    EXPECT_NEAR(mag[1], -3.0103, 0.01);  // pole: -3 dB
    EXPECT_NEAR(mag[2], -40.0, 0.1);     // -20 dB/decade, 2 decades out
    EXPECT_NEAR(phase[1], -45.0, 0.5);
    EXPECT_NEAR(phase[2], -90.0, 1.0);
}

TEST(Ac, RlcSeriesResonancePeaksAtF0) {
    // Series RLC from the source, output across the capacitor: response
    // peaks near f0 = 1/(2 pi sqrt(LC)) with Q = (1/R) sqrt(L/C).
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    const NodeId out = ckt.node("out");
    const double l = 100e-9;
    const double c = 1e-12;
    const double r = 30.0;
    auto& src = ckt.add<VoltageSource>("V1", in, kGround, 0.0);
    src.setAcMagnitude(1.0);
    ckt.add<Resistor>("R1", in, mid, r);
    ckt.add<Inductor>("L1", mid, out, l);
    ckt.add<Capacitor>("C1", out, kGround, c);
    ckt.finalize();

    const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
    AcOptions opt;
    opt.frequencies = logSweep(f0 / 10.0, f0 * 10.0, 40);
    const AcResult ac = runAcAnalysis(ckt, opt);
    const auto mag = ac.magnitudeDb(out);

    // Locate the peak.
    std::size_t peakIdx = 0;
    for (std::size_t i = 1; i < mag.size(); ++i) {
        if (mag[i] > mag[peakIdx]) {
            peakIdx = i;
        }
    }
    EXPECT_NEAR(ac.frequencies[peakIdx], f0, 0.1 * f0);
    const double q = std::sqrt(l / c) / r;
    EXPECT_NEAR(std::pow(10.0, mag[peakIdx] / 20.0), q, 0.15 * q);
}

TEST(Ac, CommonSourceGainMatchesGmOverGds) {
    // NMOS with an ideal current-source load (small gds only): low-
    // frequency gain = -gm/gds from the level-1 small-signal parameters.
    const ProcessCorner corner = ProcessCorner::typical();
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("Vdd", vdd, kGround, corner.vdd);
    auto& vin = ckt.add<VoltageSource>("Vin", in, kGround, 0.8);
    vin.setAcMagnitude(1.0);
    const MosfetParams mp = makeNmos(corner, 2e-6, 0.25e-6);
    auto& m1 = ckt.add<Mosfet>("M1", out, in, kGround, kGround, mp);
    // Bias the drain via a large resistor to VDD (approximates a current
    // source; its conductance adds to gds).
    const double rload = 30e3;
    ckt.add<Resistor>("RL", vdd, out, rload);
    ckt.finalize();

    AcOptions opt;
    opt.frequencies = {1e3};  // far below any pole
    const AcResult ac = runAcAnalysis(ckt, opt);

    // Expected gain from the operating point.
    const Vector& x = ac.operatingPoint;
    const MosfetOperatingPoint op = m1.operatingPoint(
        x[static_cast<std::size_t>(out.index)], 0.8, 0.0, 0.0);
    ASSERT_EQ(op.region, 2);  // saturation
    const double expected = -op.gm / (op.gds + 1.0 / rload);
    const auto resp = ac.nodeResponse(out);
    EXPECT_NEAR(resp[0].real(), expected, 0.02 * std::fabs(expected));
    EXPECT_NEAR(resp[0].imag(), 0.0, 0.02 * std::fabs(expected));
}

TEST(Ac, RequiresAStimulus) {
    Circuit ckt;
    ckt.add<VoltageSource>("V1", ckt.node("a"), kGround, 1.0);
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    ckt.finalize();
    AcOptions opt;
    opt.frequencies = {1e6};
    EXPECT_THROW(runAcAnalysis(ckt, opt), InvalidArgumentError);
}

TEST(Ac, CurrentSourceStimulusSeesImpedance) {
    // 1 A AC into a 1 kOhm resistor: v = 1000 V (linear analysis scales).
    Circuit ckt;
    const NodeId a = ckt.node("a");
    auto& src = ckt.add<CurrentSource>("I1", kGround, a, 0.0);
    src.setAcMagnitude(1.0);
    ckt.add<Resistor>("R1", a, kGround, 1e3);
    ckt.finalize();
    AcOptions opt;
    opt.frequencies = {1e6};
    const AcResult ac = runAcAnalysis(ckt, opt);
    EXPECT_NEAR(ac.nodeResponse(a)[0].real(), 1e3, 1e3 * 2e-5);
}

}  // namespace
}  // namespace shtrace
