// Tests for the console table printer and CSV writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/table.hpp"

namespace shtrace {
namespace {

TEST(TablePrinter, AlignsColumnsAndPrintsAllRows) {
    TablePrinter table({"name", "value"});
    table.addRowValues("alpha", 1.5);
    table.addRowValues("b", 42);
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    // Header rule, header, rule, 2 rows, rule => 6 lines.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(TablePrinter, RejectsWrongArity) {
    TablePrinter table({"a", "b", "c"});
    EXPECT_THROW(table.addRowValues(1, 2), InvalidArgumentError);
}

TEST(CsvWriter, WritesHeaderAndRows) {
    const std::string path = ::testing::TempDir() + "/shtrace_test.csv";
    {
        CsvWriter csv(path);
        csv.writeHeader({"x", "y"});
        csv.writeRow({1.0, 2.5});
        csv.writeRow({3.0, -4.0});
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "x,y");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "1,2.5");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "3,-4");
    std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
    EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), Error);
}

}  // namespace
}  // namespace shtrace
