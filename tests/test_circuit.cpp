// Tests for the Circuit container: node management, finalize, assembly
// bookkeeping, skew-derivative accumulation, breakpoints, selectors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "shtrace/circuit/circuit.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"
#include "shtrace/waveform/data_pulse.hpp"

namespace shtrace {
namespace {

TEST(Circuit, GroundAliases) {
    Circuit ckt;
    EXPECT_TRUE(ckt.node("0").isGround());
    EXPECT_TRUE(ckt.node("gnd").isGround());
    EXPECT_FALSE(ckt.node("a").isGround());
}

TEST(Circuit, NodesAreDedupedAndNamed) {
    Circuit ckt;
    const NodeId a1 = ckt.node("a");
    const NodeId a2 = ckt.node("a");
    EXPECT_EQ(a1.index, a2.index);
    EXPECT_EQ(ckt.nodeCount(), 1);
    EXPECT_EQ(ckt.nodeName(a1), "a");
    EXPECT_EQ(ckt.nodeName(kGround), "0");
    EXPECT_TRUE(ckt.hasNode("a"));
    EXPECT_FALSE(ckt.hasNode("zz"));
    EXPECT_THROW(ckt.findNode("zz"), InvalidArgumentError);
}

TEST(Circuit, FinalizeAssignsBranchRowsAfterNodes) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    auto& v1 = ckt.add<VoltageSource>("V1", a, kGround, 1.0);
    auto& v2 = ckt.add<VoltageSource>("V2", b, kGround, 2.0);
    ckt.add<Resistor>("R1", a, b, 1e3);
    ckt.finalize();
    EXPECT_EQ(ckt.systemSize(), 4u);
    EXPECT_EQ(v1.branchRow(), 2);
    EXPECT_EQ(v2.branchRow(), 3);
    EXPECT_EQ(ckt.branchCount(), 2);
}

TEST(Circuit, LifecycleGuards) {
    Circuit ckt;
    EXPECT_THROW(ckt.finalize(), InvalidArgumentError);  // empty
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
    EXPECT_THROW(ckt.systemSize(), InvalidArgumentError);  // pre-finalize
    ckt.finalize();
    EXPECT_THROW(ckt.finalize(), InvalidArgumentError);  // double finalize
    EXPECT_THROW(ckt.add<Resistor>("R2", ckt.node("a"), kGround, 1.0),
                 InvalidArgumentError);  // add after finalize
    EXPECT_THROW(ckt.node("newnode"), InvalidArgumentError);
}

TEST(Circuit, SelectorPicksNodeRow) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    ckt.add<Resistor>("R1", a, b, 1.0);
    ckt.finalize();
    const Vector c = ckt.selectorFor(b);
    EXPECT_DOUBLE_EQ(c[0], 0.0);
    EXPECT_DOUBLE_EQ(c[1], 1.0);
    EXPECT_THROW(ckt.selectorFor(kGround), InvalidArgumentError);
}

TEST(Circuit, SkewDerivativeComesFromDataSource) {
    Circuit ckt;
    const NodeId d = ckt.node("d");
    DataPulse::Spec spec;
    spec.activeEdgeTime = 10e-9;
    spec.transitionTime = 0.1e-9;
    auto data = std::make_shared<DataPulse>(spec);
    data->setSkews(200e-12, 200e-12);
    auto& vsrc = ckt.add<VoltageSource>("Vd", d, kGround, data);
    ckt.add<Resistor>("R1", d, kGround, 1e3);
    ckt.add<VoltageSource>("Vdc", ckt.node("x"), kGround, 1.0);
    ckt.add<Resistor>("R2", ckt.node("x"), kGround, 1e3);
    ckt.finalize();

    Vector rhs(ckt.systemSize());
    // On the leading edge: only the data source's branch row is touched.
    const double tLead = data->leadingEdgeMidpoint();
    ckt.addSkewDerivative(tLead, SkewParam::Setup, rhs);
    const auto branchRow = static_cast<std::size_t>(vsrc.branchRow());
    EXPECT_NE(rhs[branchRow], 0.0);
    double others = 0.0;
    for (std::size_t i = 0; i < rhs.size(); ++i) {
        if (i != branchRow) {
            others += std::abs(rhs[i]);
        }
    }
    EXPECT_DOUBLE_EQ(others, 0.0);
    // The branch equation carries -u(t), so b*z is negative of z_s > 0.
    EXPECT_LT(rhs[branchRow], 0.0);

    // Off the edges: all zero.
    Vector rhs2(ckt.systemSize());
    ckt.addSkewDerivative(5e-9, SkewParam::Setup, rhs2);
    EXPECT_DOUBLE_EQ(rhs2.normInf(), 0.0);
}

TEST(Circuit, BreakpointsSortedAndDeduped) {
    Circuit ckt;
    DataPulse::Spec spec;
    spec.activeEdgeTime = 10e-9;
    spec.transitionTime = 0.1e-9;
    auto data1 = std::make_shared<DataPulse>(spec);
    auto data2 = std::make_shared<DataPulse>(spec);  // identical corners
    data1->setSkews(100e-12, 100e-12);
    data2->setSkews(100e-12, 100e-12);
    ckt.add<VoltageSource>("V1", ckt.node("a"), kGround, data1);
    ckt.add<VoltageSource>("V2", ckt.node("b"), kGround, data2);
    ckt.add<Resistor>("R1", ckt.node("a"), ckt.node("b"), 1e3);
    ckt.finalize();
    const std::vector<double> bp = ckt.breakpoints(0.0, 20e-9);
    EXPECT_EQ(bp.size(), 4u);  // duplicates merged
    EXPECT_TRUE(std::is_sorted(bp.begin(), bp.end()));
}

TEST(Circuit, AssembleValidatesState) {
    Circuit ckt;
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
    ckt.finalize();
    Assembler asmb(1);
    EXPECT_THROW(ckt.assemble(Vector(5), 0.0, asmb), InvalidArgumentError);
}

TEST(Circuit, AssembleCountsDeviceEvaluations) {
    Circuit ckt;
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
    ckt.finalize();
    Assembler asmb(1);
    SimStats stats;
    ckt.assemble(Vector(1), 0.0, asmb, &stats);
    ckt.assemble(Vector(1), 0.0, asmb, &stats);
    EXPECT_EQ(stats.deviceEvaluations, 2u);
}

}  // namespace
}  // namespace shtrace
