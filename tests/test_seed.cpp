// Tests for the Fig. 7 seed search (bracketing + coarse bisection).
#include <gtest/gtest.h>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/seed.hpp"

namespace shtrace {
namespace {

class SeedOnTspc : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        fixture_ = new RegisterFixture(buildTspcRegister());
        problem_ = new CharacterizationProblem(*fixture_);
    }
    static void TearDownTestSuite() {
        delete problem_;
        delete fixture_;
        problem_ = nullptr;
        fixture_ = nullptr;
    }
    static RegisterFixture* fixture_;
    static CharacterizationProblem* problem_;
};

RegisterFixture* SeedOnTspc::fixture_ = nullptr;
CharacterizationProblem* SeedOnTspc::problem_ = nullptr;

TEST_F(SeedOnTspc, FindsBracketAroundSetupTime) {
    const SeedResult seed =
        findSeedPoint(problem_->h(), problem_->passSign());
    ASSERT_TRUE(seed.found);
    // Bracket is ordered and within the requested width.
    EXPECT_LT(seed.bracketLo, seed.bracketHi);
    EXPECT_LE(seed.bracketHi - seed.bracketLo, SeedOptions{}.bracketTarget);
    // The development-time setup time at generous hold is ~204 ps.
    EXPECT_GT(seed.seed.setup, 150e-12);
    EXPECT_LT(seed.seed.setup, 280e-12);
    EXPECT_DOUBLE_EQ(seed.seed.hold, SeedOptions{}.holdSkewLarge);
}

TEST_F(SeedOnTspc, BracketEndsHaveOppositeSigns) {
    const SeedResult seed =
        findSeedPoint(problem_->h(), problem_->passSign());
    ASSERT_TRUE(seed.found);
    const double sign = problem_->passSign();
    const double mLo =
        sign *
        problem_->h().evaluateValueOnly(seed.bracketLo, seed.seed.hold).h;
    const double mHi =
        sign *
        problem_->h().evaluateValueOnly(seed.bracketHi, seed.seed.hold).h;
    EXPECT_LE(mLo, 0.0);  // lo fails
    EXPECT_GT(mHi, 0.0);  // hi passes
}

TEST_F(SeedOnTspc, ExpandsWhenInitialBracketDoesNotStraddle) {
    SeedOptions opt;
    opt.setupLo = 240e-12;  // both ends initially on the pass side
    opt.setupHi = 400e-12;
    const SeedResult seed =
        findSeedPoint(problem_->h(), problem_->passSign(), opt);
    ASSERT_TRUE(seed.found);
    EXPECT_LT(seed.seed.setup, 240e-12);  // expanded downward past lo
}

TEST_F(SeedOnTspc, ReportsFailureWhenNoTransitionInReach) {
    SeedOptions opt;
    opt.setupLo = 500e-12;  // always passes
    opt.setupHi = 1.4e-9;
    opt.maxExpansions = 1;  // not enough expansion budget to reach failure
    const SeedResult seed =
        findSeedPoint(problem_->h(), problem_->passSign(), opt);
    EXPECT_FALSE(seed.found);
}

TEST_F(SeedOnTspc, EvaluationCountIsLogarithmic) {
    SimStats stats;
    const SeedResult seed =
        findSeedPoint(problem_->h(), problem_->passSign(), {}, &stats);
    ASSERT_TRUE(seed.found);
    // 2 bracket probes + ~log2(1.5ns / 20ps) ~ 7 bisections, plus slack.
    EXPECT_LE(seed.evaluations, 16);
    EXPECT_EQ(static_cast<std::uint64_t>(seed.evaluations),
              stats.hEvaluations);
}

TEST(Seed, RejectsBadArguments) {
    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg);
    EXPECT_THROW(findSeedPoint(problem.h(), 0.5), InvalidArgumentError);
    SeedOptions bad;
    bad.setupLo = 1e-9;
    bad.setupHi = 0.5e-9;
    EXPECT_THROW(findSeedPoint(problem.h(), 1.0, bad),
                 InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
