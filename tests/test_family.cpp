// Tests for contour families at multiple degradation levels.
#include <gtest/gtest.h>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/family.hpp"

namespace shtrace {
namespace {

ContourFamilyOptions smallFamily() {
    ContourFamilyOptions opt;
    opt.degradations = {0.05, 0.10, 0.20};
    opt.tracer.maxPoints = 8;
    opt.tracer.bounds = SkewBounds{80e-12, 700e-12, 40e-12, 500e-12};
    return opt;
}

TEST(ContourFamily, TracesAllMembers) {
    const RegisterFixture reg = buildTspcRegister();
    const ContourFamilyResult fam =
        characterizeContourFamily(reg, smallFamily());
    ASSERT_EQ(fam.members.size(), 3u);
    EXPECT_TRUE(fam.allSucceeded());
    EXPECT_GT(fam.characteristicClockToQ, 100e-12);
    for (const auto& m : fam.members) {
        EXPECT_GE(m.contour.points.size(), 4u) << m.degradation;
        // t_f grows with the allowed degradation.
        EXPECT_GT(m.tf, 11.05e-9);
    }
    EXPECT_LT(fam.members[0].tf, fam.members[1].tf);
    EXPECT_LT(fam.members[1].tf, fam.members[2].tf);
}

TEST(ContourFamily, ContoursAreNested) {
    // A larger allowed degradation tolerates later data: its setup
    // asymptote (the seed) sits at a smaller setup skew.
    const RegisterFixture reg = buildTspcRegister();
    const ContourFamilyResult fam =
        characterizeContourFamily(reg, smallFamily());
    ASSERT_TRUE(fam.allSucceeded());
    EXPECT_GT(fam.members[0].seed.seed.setup,
              fam.members[1].seed.seed.setup);
    EXPECT_GT(fam.members[1].seed.seed.setup,
              fam.members[2].seed.seed.setup);
}

TEST(ContourFamily, WarmStartReducesSeedCost) {
    const RegisterFixture reg = buildTspcRegister();
    const ContourFamilyResult fam =
        characterizeContourFamily(reg, smallFamily());
    ASSERT_TRUE(fam.allSucceeded());
    // Members after the first bisect inside a narrowed bracket.
    EXPECT_LE(fam.members[1].seed.evaluations,
              fam.members[0].seed.evaluations);
    EXPECT_LE(fam.members[2].seed.evaluations,
              fam.members[0].seed.evaluations);
}

TEST(ContourFamily, RejectsEmptyLevelList) {
    const RegisterFixture reg = buildTspcRegister();
    ContourFamilyOptions opt = smallFamily();
    opt.degradations.clear();
    EXPECT_THROW(characterizeContourFamily(reg, opt), InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
