// Tests for the adjoint (backward) skew-sensitivity sweep: it must
// reproduce the forward-sensitivity gradient of the SAME discrete map.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "shtrace/analysis/adjoint.hpp"
#include "shtrace/analysis/sensitivity.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

struct RcDataFixture {
    Circuit ckt;
    std::shared_ptr<DataPulse> data;
    NodeId out;

    RcDataFixture() {
        DataPulse::Spec spec;
        spec.v0 = 0.0;
        spec.v1 = 2.5;
        spec.activeEdgeTime = 2e-9;
        spec.transitionTime = 0.1e-9;
        data = std::make_shared<DataPulse>(spec);
        data->setSkews(300e-12, 200e-12);
        const NodeId in = ckt.node("in");
        out = ckt.node("out");
        ckt.add<VoltageSource>("Vd", in, kGround, data);
        ckt.add<Resistor>("R1", in, out, 1e3);
        ckt.add<Capacitor>("C1", out, kGround, 0.2e-12);
        ckt.finalize();
    }
};

class AdjointVsForward
    : public ::testing::TestWithParam<IntegrationMethod> {};

TEST_P(AdjointVsForward, MatchesForwardOnLinearCircuit) {
    RcDataFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.tStop = 2.2e-9;  // ends mid-trailing-edge: both gradients active
    opt.method = GetParam();
    opt.fixedSteps = 1100;
    opt.initialCondition = Vector(fx.ckt.systemSize());
    opt.trackSkewSensitivities = true;
    opt.recordAdjointTape = true;
    opt.storeStates = false;

    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    const double fwdS = sel.dot(tr.finalSensitivitySetup);
    const double fwdH = sel.dot(tr.finalSensitivityHold);
    const AdjointGradient adj = computeAdjointGradient(fx.ckt, tr, sel);

    // On a LINEAR circuit the step Jacobians are state-independent, so
    // forward and adjoint differentiate the identical discrete map: the
    // agreement is solver-precision tight.
    const double scale = std::max({std::fabs(fwdS), std::fabs(fwdH), 1.0});
    EXPECT_NEAR(adj.dSetup, fwdS, 1e-9 * scale);
    EXPECT_NEAR(adj.dHold, fwdH, 1e-9 * scale);
}

INSTANTIATE_TEST_SUITE_P(Methods, AdjointVsForward,
                         ::testing::Values(IntegrationMethod::BackwardEuler,
                                           IntegrationMethod::Trapezoidal));

TEST(Adjoint, MatchesForwardOnTspcRegister) {
    const RegisterFixture reg = buildTspcRegister();
    const Vector sel = reg.circuit.selectorFor(reg.q);
    reg.data->setSkews(230e-12, 190e-12);  // near the knee
    TransientOptions opt;
    opt.tStop = reg.activeEdgeMidpoint() + 0.52e-9;
    opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);
    opt.trackSkewSensitivities = true;
    opt.recordAdjointTape = true;
    opt.storeStates = false;

    const TransientResult tr = TransientAnalysis(reg.circuit, opt).run();
    ASSERT_TRUE(tr.success);
    const double fwdS = sel.dot(tr.finalSensitivitySetup);
    const double fwdH = sel.dot(tr.finalSensitivityHold);
    const AdjointGradient adj = computeAdjointGradient(reg.circuit, tr, sel);

    // Forward reuses the Newton factorization (O(relTol) off the accepted
    // state); the adjoint refactors exactly. Agreement to ~0.1%.
    EXPECT_NEAR(adj.dSetup, fwdS, 1e-3 * std::fabs(fwdS));
    EXPECT_NEAR(adj.dHold, fwdH, 1e-3 * std::fabs(fwdH));
    EXPECT_GT(std::fabs(adj.dSetup), 1e8);
    EXPECT_GT(std::fabs(adj.dHold), 1e8);
}

TEST(Adjoint, ZeroGradientBeforeDataMoves) {
    RcDataFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.tStop = 1e-9;  // before the leading edge
    opt.fixedSteps = 100;
    opt.initialCondition = Vector(fx.ckt.systemSize());
    opt.recordAdjointTape = true;
    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    const AdjointGradient adj = computeAdjointGradient(fx.ckt, tr, sel);
    EXPECT_DOUBLE_EQ(adj.dSetup, 0.0);
    EXPECT_DOUBLE_EQ(adj.dHold, 0.0);
}

TEST(Adjoint, RequiresTape) {
    RcDataFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.tStop = 1e-9;
    opt.fixedSteps = 10;
    opt.initialCondition = Vector(fx.ckt.systemSize());
    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    EXPECT_THROW(computeAdjointGradient(fx.ckt, tr, sel),
                 InvalidArgumentError);
    EXPECT_THROW(computeAdjointGradient(fx.ckt, tr, Vector(2)),
                 InvalidArgumentError);
}

TEST(Adjoint, TapeWorksWithAdaptiveGrid) {
    // Non-uniform steps: the per-step `a` bookkeeping must stay coherent.
    RcDataFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.tStop = 2.2e-9;
    opt.adaptive = true;
    opt.dtInit = 1e-13;
    opt.lteRelTol = 1e-4;
    opt.initialCondition = Vector(fx.ckt.systemSize());
    opt.trackSkewSensitivities = true;
    opt.recordAdjointTape = true;
    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    const double fwdH = sel.dot(tr.finalSensitivityHold);
    const AdjointGradient adj = computeAdjointGradient(fx.ckt, tr, sel);
    EXPECT_NEAR(adj.dHold, fwdH, 1e-6 * std::max(std::fabs(fwdH), 1.0));
}

}  // namespace
}  // namespace shtrace
