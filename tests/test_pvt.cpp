// Tests for the PVT corner sweep harness and the process corner library.
#include <gtest/gtest.h>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/pvt.hpp"

namespace shtrace {
namespace {

TEST(ProcessCorner, NamedCornersAreOrdered) {
    const ProcessCorner tt = ProcessCorner::typical();
    const ProcessCorner ff = ProcessCorner::fast();
    const ProcessCorner ss = ProcessCorner::slow();
    EXPECT_GT(ff.vdd, tt.vdd);
    EXPECT_LT(ss.vdd, tt.vdd);
    EXPECT_LT(ff.vtn, tt.vtn);
    EXPECT_GT(ss.vtn, tt.vtn);
    EXPECT_GT(ff.kpn, tt.kpn);
    EXPECT_LT(ss.kpn, tt.kpn);
}

TEST(ProcessCorner, TemperatureDeratesMobilityAndThreshold) {
    const ProcessCorner tt = ProcessCorner::typical();
    const ProcessCorner hot = tt.atTemperature(125.0);
    const ProcessCorner cold = tt.atTemperature(-40.0);
    EXPECT_LT(hot.kpn, tt.kpn);
    EXPECT_GT(cold.kpn, tt.kpn);
    EXPECT_LT(hot.vtn, tt.vtn);
    EXPECT_GT(cold.vtn, tt.vtn);
    EXPECT_NE(hot.name, tt.name);
}

TEST(MosLibrary, CapacitancesScaleWithGeometry) {
    const ProcessCorner tt = ProcessCorner::typical();
    const MosfetParams small = makeNmos(tt, 0.5e-6, 0.25e-6);
    const MosfetParams wide = makeNmos(tt, 2.0e-6, 0.25e-6);
    EXPECT_GT(wide.cgs, small.cgs);
    EXPECT_GT(wide.cdb, small.cdb);
    EXPECT_NEAR(wide.beta() / small.beta(), 4.0, 1e-12);
    EXPECT_THROW(makeNmos(tt, 0.0, 0.25e-6), InvalidArgumentError);
    EXPECT_THROW(makePmos(tt, 1e-6, -1.0), InvalidArgumentError);
}

TEST(PvtSweep, CharacterizesAllCornersOfTspc) {
    const std::vector<ProcessCorner> corners{
        ProcessCorner::typical(), ProcessCorner::fast(),
        ProcessCorner::slow()};
    SimStats stats;
    const auto rows = sweepPvtCorners(
        corners,
        [](const ProcessCorner& corner) {
            TspcOptions opt;
            opt.corner = corner;
            return buildTspcRegister(opt);
        },
        {}, &stats);
    ASSERT_EQ(rows.size(), 3u);
    for (const auto& row : rows) {
        EXPECT_TRUE(row.success) << row.corner;
        EXPECT_GT(row.setupTime, 0.0) << row.corner;
        EXPECT_GT(row.holdTime, 0.0) << row.corner;
        EXPECT_GT(row.characteristicClockToQ, 50e-12) << row.corner;
    }
    // FF must be faster than SS on the characteristic clock-to-Q delay.
    EXPECT_LT(rows[1].characteristicClockToQ,
              rows[2].characteristicClockToQ);
    EXPECT_GT(stats.transientSolves, 0u);
}

TEST(PvtSweep, BuilderExceptionYieldsFailedRow) {
    const std::vector<ProcessCorner> corners{ProcessCorner::typical()};
    const auto rows = sweepPvtCorners(
        corners,
        [](const ProcessCorner&) -> RegisterFixture {
            throw NumericalError("builder exploded");
        },
        {});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].success);
}

}  // namespace
}  // namespace shtrace
