// shtrace-served -- the characterization daemon.
//
// Binds 127.0.0.1:<port>, serves POST /v1/characterize, GET /metrics,
// GET /healthz (see docs/SERVE.md), and drains gracefully on SIGTERM or
// SIGINT: admission stops (503), every in-flight characterization
// finishes and flushes its response, the store is already durable (each
// result was published at compute time), and the process exits 0.
//
//   shtrace-served [--port N] [--port-file PATH] [--cache-dir DIR]
//                  [--threads N] [--queue-depth N] [--retry-after SEC]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port as a decimal line, which is how scripts/check.sh and the
// soak bench discover where the daemon landed.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "shtrace/serve/server.hpp"

namespace {

// Signal handlers may only touch lock-free atomics; the main thread polls
// this flag and performs the actual drain in normal context.
volatile std::sig_atomic_t g_stopRequested = 0;

void onStopSignal(int) { g_stopRequested = 1; }

int usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0
        << " [--port N] [--port-file PATH] [--cache-dir DIR]\n"
           "       [--threads N] [--queue-depth N] [--retry-after SEC]\n\n"
           "Characterization-as-a-service daemon (docs/SERVE.md).\n"
           "  --port N         listen port; 0 = ephemeral (default 0)\n"
           "  --port-file P    write the resolved port to P\n"
           "  --cache-dir D    persistent result store (default: none)\n"
           "  --threads N      worker threads; 0 = hardware (default 0)\n"
           "  --queue-depth N  admission bound before 503 (default 64)\n"
           "  --retry-after S  Retry-After hint on 503 (default 1)\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    shtrace::serve::DaemonOptions options;
    std::string portFile;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            options.port = std::atoi(value("--port"));
        } else if (arg == "--port-file") {
            portFile = value("--port-file");
        } else if (arg == "--cache-dir") {
            options.service.cacheDir = value("--cache-dir");
        } else if (arg == "--threads") {
            options.service.threads = std::atoi(value("--threads"));
        } else if (arg == "--queue-depth") {
            options.service.queueDepth = static_cast<std::size_t>(
                std::atol(value("--queue-depth")));
        } else if (arg == "--retry-after") {
            options.service.retryAfterSeconds =
                std::atoi(value("--retry-after"));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "error: unknown flag " << arg << "\n";
            return usage(argv[0]);
        }
    }
    if (options.port < 0 || options.port > 65535) {
        std::cerr << "error: --port out of range\n";
        return 2;
    }
    if (options.service.queueDepth == 0) {
        std::cerr << "error: --queue-depth must be positive\n";
        return 2;
    }

    try {
        shtrace::serve::ServedDaemon daemon(options);

        if (!portFile.empty()) {
            std::ofstream out(portFile, std::ios::trunc);
            out << daemon.port() << "\n";
            if (!out) {
                std::cerr << "error: cannot write " << portFile << "\n";
                return 1;
            }
        }

        // No SA_RESTART: a signal must interrupt blocking syscalls so the
        // poll-based accept loop notices promptly.
        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_handler = onStopSignal;
        sigemptyset(&action.sa_mask);
        sigaction(SIGTERM, &action, nullptr);
        sigaction(SIGINT, &action, nullptr);

        std::cerr << "shtrace-served: listening on 127.0.0.1:"
                  << daemon.port() << " with "
                  << daemon.service().workerThreads() << " workers"
                  << (options.service.cacheDir.empty()
                          ? std::string()
                          : ", store at " + options.service.cacheDir)
                  << "\n";

        std::thread acceptLoop([&daemon] { daemon.run(); });
        while (g_stopRequested == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        std::cerr << "shtrace-served: drain requested, finishing "
                     "in-flight work\n";
        daemon.shutdown();
        acceptLoop.join();

        const auto counters = daemon.service().counters();
        std::cerr << "shtrace-served: drained clean ("
                  << counters.requests << " requests, "
                  << counters.computed << " computed, "
                  << counters.coalesced << " coalesced, "
                  << counters.cacheHits << " store hits)\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "shtrace-served: fatal: " << e.what() << "\n";
        return 1;
    }
}
