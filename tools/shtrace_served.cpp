// shtrace-served -- the characterization daemon.
//
// Binds 127.0.0.1:<port>, serves POST /v1/characterize, GET /metrics,
// GET /healthz, GET /debug/requests[/<id>] (see docs/SERVE.md), and
// drains gracefully on SIGTERM or SIGINT: admission stops (503), every
// in-flight characterization finishes and flushes its response, the
// store is already durable (each result was published at compute time),
// and the process exits 0.
//
//   shtrace-served [--port N] [--port-file PATH] [--cache-dir DIR]
//                  [--threads N] [--queue-depth N] [--retry-after SEC]
//                  [--log-level LEVEL] [--flight-recorder N]
//                  [--slow-trace-dir DIR] [--slow-traces K]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port as a decimal line, which is how scripts/check.sh and the
// soak bench discover where the daemon landed.
//
// All daemon output on stderr is the structured JSON-lines event log
// (docs/OBSERVABILITY.md): one object per line, `ts`/`level`/`event`
// first, request-scoped lines carrying `trace`/`span`.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "shtrace/obs/log.hpp"
#include "shtrace/serve/server.hpp"

namespace {

// Signal handlers may only touch lock-free atomics; the main thread polls
// this flag and performs the actual drain in normal context.
volatile std::sig_atomic_t g_stopRequested = 0;

void onStopSignal(int) { g_stopRequested = 1; }

int usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0
        << " [--port N] [--port-file PATH] [--cache-dir DIR]\n"
           "       [--threads N] [--queue-depth N] [--retry-after SEC]\n"
           "       [--log-level LEVEL] [--flight-recorder N]\n"
           "       [--slow-trace-dir DIR] [--slow-traces K]\n\n"
           "Characterization-as-a-service daemon (docs/SERVE.md).\n"
           "  --port N           listen port; 0 = ephemeral (default 0)\n"
           "  --port-file P      write the resolved port to P\n"
           "  --cache-dir D      persistent result store (default: none)\n"
           "  --threads N        worker threads; 0 = hardware (default 0)\n"
           "  --queue-depth N    admission bound before 503 (default 64)\n"
           "  --retry-after S    Retry-After hint on 503 (default 1)\n"
           "  --log-level L      debug|info|warn|error (default info)\n"
           "  --flight-recorder N  requests kept for GET /debug/requests\n"
           "                     (default 128)\n"
           "  --slow-trace-dir D persist fine Chrome traces for the K\n"
           "                     slowest requests into D (default: off)\n"
           "  --slow-traces K    how many slowest to keep (default 4)\n";
    return 2;
}

bool parseLogLevel(const std::string& name, shtrace::obs::LogLevel* out) {
    if (name == "debug") {
        *out = shtrace::obs::LogLevel::Debug;
    } else if (name == "info") {
        *out = shtrace::obs::LogLevel::Info;
    } else if (name == "warn") {
        *out = shtrace::obs::LogLevel::Warn;
    } else if (name == "error") {
        *out = shtrace::obs::LogLevel::Error;
    } else {
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    shtrace::serve::DaemonOptions options;
    std::string portFile;
    shtrace::obs::LogLevel logLevel = shtrace::obs::LogLevel::Info;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            options.port = std::atoi(value("--port"));
        } else if (arg == "--port-file") {
            portFile = value("--port-file");
        } else if (arg == "--cache-dir") {
            options.service.cacheDir = value("--cache-dir");
        } else if (arg == "--threads") {
            options.service.threads = std::atoi(value("--threads"));
        } else if (arg == "--queue-depth") {
            options.service.queueDepth = static_cast<std::size_t>(
                std::atol(value("--queue-depth")));
        } else if (arg == "--retry-after") {
            options.service.retryAfterSeconds =
                std::atoi(value("--retry-after"));
        } else if (arg == "--log-level") {
            const std::string name = value("--log-level");
            if (!parseLogLevel(name, &logLevel)) {
                std::cerr << "error: unknown --log-level " << name << "\n";
                return 2;
            }
        } else if (arg == "--flight-recorder") {
            options.service.flightRecorderCapacity =
                static_cast<std::size_t>(
                    std::atol(value("--flight-recorder")));
        } else if (arg == "--slow-trace-dir") {
            options.service.slowTraceDir = value("--slow-trace-dir");
        } else if (arg == "--slow-traces") {
            options.service.slowTraceCount = static_cast<std::size_t>(
                std::atol(value("--slow-traces")));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "error: unknown flag " << arg << "\n";
            return usage(argv[0]);
        }
    }
    if (options.port < 0 || options.port > 65535) {
        std::cerr << "error: --port out of range\n";
        return 2;
    }
    if (options.service.queueDepth == 0) {
        std::cerr << "error: --queue-depth must be positive\n";
        return 2;
    }
    if (options.service.flightRecorderCapacity == 0) {
        std::cerr << "error: --flight-recorder must be positive\n";
        return 2;
    }

    // From here on, everything the daemon says is one JSON object per
    // line on stderr (scripts/log_lint.sh holds this to account).
    shtrace::obs::logToStream(stderr);
    shtrace::obs::setLogLevel(logLevel);
    using shtrace::obs::logEvent;
    using shtrace::obs::LogLevel;

    try {
        shtrace::serve::ServedDaemon daemon(options);

        if (!portFile.empty()) {
            std::ofstream out(portFile, std::ios::trunc);
            out << daemon.port() << "\n";
            if (!out) {
                logEvent(LogLevel::Error, "served.port_file_failed",
                         {{"path", portFile}});
                return 1;
            }
        }

        // No SA_RESTART: a signal must interrupt blocking syscalls so the
        // poll-based accept loop notices promptly.
        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_handler = onStopSignal;
        sigemptyset(&action.sa_mask);
        sigaction(SIGTERM, &action, nullptr);
        sigaction(SIGINT, &action, nullptr);

        logEvent(LogLevel::Info, "served.listening",
                 {{"port", daemon.port()},
                  {"workers", daemon.service().workerThreads()},
                  {"cacheDir", options.service.cacheDir},
                  {"flightRecorder",
                   static_cast<unsigned long long>(
                       options.service.flightRecorderCapacity)},
                  {"slowTraceDir", options.service.slowTraceDir}});

        std::thread acceptLoop([&daemon] { daemon.run(); });
        while (g_stopRequested == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        logEvent(LogLevel::Info, "served.drain_requested", {});
        daemon.shutdown();
        acceptLoop.join();

        const auto counters = daemon.service().counters();
        logEvent(LogLevel::Info, "served.drained",
                 {{"requests", counters.requests},
                  {"computed", counters.computed},
                  {"coalesced", counters.coalesced},
                  {"cacheHits", counters.cacheHits},
                  {"workerExceptions", counters.workerExceptions}});
        return 0;
    } catch (const std::exception& e) {
        logEvent(LogLevel::Error, "served.fatal", {{"what", e.what()}});
        return 1;
    }
}
