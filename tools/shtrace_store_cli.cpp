// shtrace-store -- inspect and maintain a persistent characterization
// store (docs/STORE.md).
//
//   shtrace-store list <dir>                 one line per valid entry
//   shtrace-store show <dir> <key> [--timeline] [--stats]
//                                            framing + raw payload text;
//                                            --timeline decodes the ordered
//                                            per-contour event log (v4),
//                                            --stats pretty-prints the
//                                            21-field stats line with
//                                            derived ratios
//   shtrace-store stats <dir>                entry count, bytes on disk,
//                                            per-kind and per-cell
//                                            breakdowns
//   shtrace-store gc <dir>                   delete corrupt/stale entries
//   shtrace-store export <dir> <out.lib> [library-name]
//                                            Liberty-lite from cached rows
//
// Exit status: 0 on success, 1 on a failed operation (unknown key, write
// error), 2 on a usage error.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "shtrace/chz/library.hpp"
#include "shtrace/store/cache.hpp"
#include "shtrace/store/key.hpp"
#include "shtrace/store/serialize.hpp"
#include "shtrace/util/table.hpp"

namespace {

using namespace shtrace;

int usage() {
    std::cerr << "usage: shtrace-store list <dir>\n"
                 "       shtrace-store show <dir> <key> [--timeline] "
                 "[--stats]\n"
                 "       shtrace-store stats <dir>\n"
                 "       shtrace-store gc <dir>\n"
                 "       shtrace-store export <dir> <out.lib> "
                 "[library-name]\n";
    return 2;
}

std::size_t payloadLines(const store::StoreEntry& entry) {
    return static_cast<std::size_t>(
        std::count(entry.payload.begin(), entry.payload.end(), '\n'));
}

int runList(const store::ResultStore& cache) {
    const std::vector<store::StoreEntry> entries = cache.list();
    TablePrinter table({"key", "kind", "label", "problem", "lines"});
    for (const store::StoreEntry& entry : entries) {
        table.addRowValues(store::toHexKey(entry.key), entry.kind,
                           entry.label.empty() ? "-" : entry.label,
                           store::toHexKey(entry.problem),
                           static_cast<int>(payloadLines(entry)));
    }
    table.print(std::cout);
    std::cout << entries.size() << " entries in " << cache.dir() << "\n";
    return 0;
}

/// Decodes the payload's trace incident log (characterize and library_row
/// entries carry one since format v3) into a human-readable block.
void showDiagnostics(const store::StoreEntry& entry) {
    TraceDiagnostics diag;
    std::string summary;
    try {
        if (entry.kind == store::kKindCharacterize) {
            const CharacterizeResult r =
                store::deserializeCharacterizeResult(entry.payload);
            diag = r.contour.diagnostics;
            summary = r.failureReason;
        } else if (entry.kind == store::kKindLibraryRow) {
            const LibraryRow r = store::deserializeLibraryRow(entry.payload);
            diag = r.diagnostics;
            summary = r.failureReason;
        } else {
            return;  // other kinds carry no trace
        }
    } catch (const store::StoreFormatError&) {
        return;  // raw payload above is all we can show
    }
    std::cout << "trace   "
              << (diag.empty() ? "clean (no recorded events)"
                               : diag.summary())
              << "\n";
    if (!summary.empty()) {
        std::cout << "reason  " << summary << "\n";
    }
    for (const TraceEvent& e : diag.events) {
        std::cout << "  " << toString(e.kind) << " [" << toString(e.phase)
                  << "] at (" << e.at.setup << ", " << e.at.hold
                  << ") alpha=" << e.stepLength
                  << " iters=" << e.correctorIterations << "\n";
    }
}

/// Extracts the serialized cost accounting, for any kind that carries one.
bool statsOfEntry(const store::StoreEntry& entry, SimStats& out) {
    try {
        if (entry.kind == store::kKindCharacterize) {
            out = store::deserializeCharacterizeResult(entry.payload).stats;
        } else if (entry.kind == store::kKindLibraryRow) {
            out = store::deserializeLibraryRow(entry.payload).stats;
        } else if (entry.kind == store::kKindPvtRow) {
            out = store::deserializePvtRow(entry.payload).stats;
        } else if (entry.kind == store::kKindSurface) {
            out = store::deserializeSurfaceResult(entry.payload).stats;
        } else {
            return false;  // mc_row and friends carry no stats line
        }
        return true;
    } catch (const store::StoreFormatError&) {
        return false;
    }
}

/// --stats: the 21-field stats line with names, plus the derived ratios
/// that tell whether the hot paths actually engaged.
void showStats(const store::StoreEntry& entry) {
    SimStats s;
    if (!statsOfEntry(entry, s)) {
        std::cout << "stats   (none: '" << entry.kind
                  << "' entries carry no stats line)\n";
        return;
    }
    TablePrinter table({"field", "value"});
    table.addRowValues("transientSolves", static_cast<double>(s.transientSolves));
    table.addRowValues("timeSteps", static_cast<double>(s.timeSteps));
    table.addRowValues("rejectedSteps", static_cast<double>(s.rejectedSteps));
    table.addRowValues("newtonIterations",
                       static_cast<double>(s.newtonIterations));
    table.addRowValues("luFactorizations",
                       static_cast<double>(s.luFactorizations));
    table.addRowValues("luSolves", static_cast<double>(s.luSolves));
    table.addRowValues("deviceEvaluations",
                       static_cast<double>(s.deviceEvaluations));
    table.addRowValues("residualOnlyAssemblies",
                       static_cast<double>(s.residualOnlyAssemblies));
    table.addRowValues("chordIterations",
                       static_cast<double>(s.chordIterations));
    table.addRowValues("bypassedFactorizations",
                       static_cast<double>(s.bypassedFactorizations));
    table.addRowValues("sensitivitySteps",
                       static_cast<double>(s.sensitivitySteps));
    table.addRowValues("hEvaluations", static_cast<double>(s.hEvaluations));
    table.addRowValues("mpnrIterations",
                       static_cast<double>(s.mpnrIterations));
    table.addRowValues("cacheHits", static_cast<double>(s.cacheHits));
    table.addRowValues("cacheMisses", static_cast<double>(s.cacheMisses));
    table.addRowValues("cacheWarmStarts",
                       static_cast<double>(s.cacheWarmStarts));
    table.addRowValues("traceNonFiniteRejections",
                       static_cast<double>(s.traceNonFiniteRejections));
    table.addRowValues("traceTransientRetries",
                       static_cast<double>(s.traceTransientRetries));
    table.addRowValues("tracePlateauReseeds",
                       static_cast<double>(s.tracePlateauReseeds));
    table.addRowValues("traceStepHalvings",
                       static_cast<double>(s.traceStepHalvings));
    table.addRowValues("sparseRefactorizations",
                       static_cast<double>(s.sparseRefactorizations));
    table.addRowValues("batchAssemblies",
                       static_cast<double>(s.batchAssemblies));
    table.addRowValues("wallSeconds", s.wallSeconds);
    std::cout << "stats\n";
    table.print(std::cout);

    const auto ratio = [](double part, double whole) {
        return whole > 0.0 ? std::to_string(part / whole) : std::string("-");
    };
    const double newtonAll = static_cast<double>(s.newtonIterations) +
                             static_cast<double>(s.chordIterations);
    const double factorAll = static_cast<double>(s.luFactorizations) +
                             static_cast<double>(s.bypassedFactorizations);
    const double lookups = static_cast<double>(s.cacheHits) +
                           static_cast<double>(s.cacheMisses);
    std::cout << "derived\n"
              << "  chord-iteration share        "
              << ratio(static_cast<double>(s.chordIterations), newtonAll)
              << "\n"
              << "  bypassed-factorization share "
              << ratio(static_cast<double>(s.bypassedFactorizations),
                       factorAll)
              << "\n"
              << "  cache hit rate               "
              << ratio(static_cast<double>(s.cacheHits), lookups) << "\n"
              << "  steps per transient          "
              << ratio(static_cast<double>(s.timeSteps),
                       static_cast<double>(s.transientSolves))
              << "\n"
              << "  newton iters per step        "
              << ratio(newtonAll, static_cast<double>(s.timeSteps) +
                                      static_cast<double>(s.rejectedSteps))
              << "\n";
}

/// --timeline: the ordered whole-trace event log (store format v4).
void showTimeline(const store::StoreEntry& entry) {
    TraceDiagnostics diag;
    try {
        if (entry.kind == store::kKindCharacterize) {
            diag = store::deserializeCharacterizeResult(entry.payload)
                       .contour.diagnostics;
        } else if (entry.kind == store::kKindLibraryRow) {
            diag = store::deserializeLibraryRow(entry.payload).diagnostics;
        } else {
            std::cout << "timeline (none: '" << entry.kind
                      << "' entries carry no trace)\n";
            return;
        }
    } catch (const store::StoreFormatError& e) {
        std::cout << "timeline (undecodable: " << e.what() << ")\n";
        return;
    }
    std::cout << "timeline (" << diag.timeline.size() << " events)\n";
    for (std::size_t i = 0; i < diag.timeline.size(); ++i) {
        const TimelineEvent& e = diag.timeline[i];
        std::cout << "  [" << i << "] " << toString(e.kind) << " ["
                  << toString(e.phase) << "] at (" << e.at.setup << ", "
                  << e.at.hold << ") op=" << e.opIndex;
        if (e.wallNs > 0.0) {
            std::cout << " t=" << e.wallNs / 1e6 << "ms";
        }
        std::cout << "\n";
    }
}

int runShow(const store::ResultStore& cache, const std::string& keyText,
            bool withTimeline, bool withStats) {
    const auto key = store::parseHexKey(keyText);
    if (!key) {
        std::cerr << "shtrace-store: '" << keyText
                  << "' is not a 16-hex-digit key\n";
        return 2;
    }
    const auto entry = cache.load(*key);
    if (!entry) {
        std::cerr << "shtrace-store: no valid entry "
                  << store::toHexKey(*key) << " in " << cache.dir() << "\n";
        return 1;
    }
    std::cout << "key     " << store::toHexKey(entry->key) << "\n"
              << "problem " << store::toHexKey(entry->problem) << "\n"
              << "kind    " << entry->kind << "\n"
              << "label   " << (entry->label.empty() ? "-" : entry->label)
              << "\n";
    if (entry->kind == store::kKindCornerRow) {
        try {
            const CornerFamilyRow row =
                store::deserializeCornerRow(entry->payload);
            std::cout << "corner  " << row.corner << " ("
                      << toString(row.provenance) << ")\n";
            if (!row.failureReason.empty()) {
                std::cout << "reason  " << row.failureReason << "\n";
            }
        } catch (const store::StoreFormatError&) {
            // Raw payload below is all we can show.
        }
    }
    showDiagnostics(*entry);
    if (withStats) {
        showStats(*entry);
    }
    if (withTimeline) {
        showTimeline(*entry);
    }
    std::cout << "payload (" << payloadLines(*entry) << " lines)\n"
              << entry->payload;
    return 0;
}

/// `stats`: what a store operator asks before a gc or a capacity call --
/// how many entries, how many bytes, and what they are (per payload kind
/// and per cell label).
int runStats(const store::ResultStore& cache) {
    struct Bucket {
        std::size_t entries = 0;
        std::uintmax_t bytes = 0;
    };
    Bucket total;
    std::map<std::string, Bucket> byKind;
    std::map<std::string, Bucket> byCell;
    for (const store::StoreEntry& entry : cache.list()) {
        std::uintmax_t bytes = 0;
        std::error_code ec;
        const auto size = std::filesystem::file_size(
            std::filesystem::path(cache.dir()) /
                store::ResultStore::entryFileName(entry.key),
            ec);
        if (!ec) {
            bytes = size;
        }
        ++total.entries;
        total.bytes += bytes;
        Bucket& kind = byKind[entry.kind];
        ++kind.entries;
        kind.bytes += bytes;
        Bucket& cell = byCell[entry.label.empty() ? "-" : entry.label];
        ++cell.entries;
        cell.bytes += bytes;
    }
    std::cout << total.entries << " entries, " << total.bytes
              << " bytes in " << cache.dir() << "\n";
    if (total.entries == 0) {
        return 0;
    }
    std::cout << "by kind\n";
    TablePrinter kindTable({"kind", "entries", "bytes"});
    for (const auto& [kind, bucket] : byKind) {
        kindTable.addRowValues(kind, static_cast<int>(bucket.entries),
                               static_cast<double>(bucket.bytes));
    }
    kindTable.print(std::cout);
    std::cout << "by cell\n";
    TablePrinter cellTable({"cell", "entries", "bytes"});
    for (const auto& [cell, bucket] : byCell) {
        cellTable.addRowValues(cell, static_cast<int>(bucket.entries),
                               static_cast<double>(bucket.bytes));
    }
    cellTable.print(std::cout);
    return 0;
}

int runGc(const store::ResultStore& cache) {
    const store::ResultStore::GcReport report = cache.gc();
    std::cout << "kept " << report.kept << ", removed " << report.removed
              << " in " << cache.dir() << "\n";
    return 0;
}

int runExport(const store::ResultStore& cache, const std::string& outPath,
              const std::string& libraryName) {
    std::vector<LibraryRow> rows;
    for (const store::StoreEntry& entry : cache.list()) {
        try {
            if (entry.kind == store::kKindLibraryRow) {
                rows.push_back(store::deserializeLibraryRow(entry.payload));
            } else if (entry.kind == store::kKindCornerRow) {
                // Corner family entries export like cells, one per corner,
                // keeping the traced/surrogate provenance visible.
                const CornerFamilyRow corner =
                    store::deserializeCornerRow(entry.payload);
                LibraryRow row;
                row.cell = corner.corner;
                row.success = corner.success;
                row.failureReason = corner.failureReason;
                row.characteristicClockToQ = corner.characteristicClockToQ;
                row.setupTime = corner.setupTime;
                row.holdTime = corner.holdTime;
                row.contour = corner.contour;
                row.provenance = toString(corner.provenance);
                rows.push_back(std::move(row));
            }
        } catch (const store::StoreFormatError& e) {
            std::cerr << "shtrace-store: skipping "
                      << store::toHexKey(entry.key) << ": " << e.what()
                      << "\n";
        }
    }
    if (rows.empty()) {
        std::cerr << "shtrace-store: no library_row or corner_row entries in "
                  << cache.dir() << "\n";
        return 1;
    }
    // list() orders by content key; a report reads better by cell name.
    std::sort(rows.begin(), rows.end(),
              [](const LibraryRow& a, const LibraryRow& b) {
                  return a.cell < b.cell;
              });
    writeLibertyLite(rows, outPath, libraryName);
    std::cout << "wrote " << rows.size() << " cells to " << outPath << "\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() < 2) {
        return usage();
    }
    const std::string& command = args[0];
    try {
        const store::ResultStore cache(args[1]);
        if (command == "list" && args.size() == 2) {
            return runList(cache);
        }
        if (command == "show" && args.size() >= 3 && args.size() <= 5) {
            bool withTimeline = false;
            bool withStats = false;
            bool badFlag = false;
            for (std::size_t i = 3; i < args.size(); ++i) {
                if (args[i] == "--timeline") {
                    withTimeline = true;
                } else if (args[i] == "--stats") {
                    withStats = true;
                } else {
                    badFlag = true;
                }
            }
            if (!badFlag) {
                return runShow(cache, args[2], withTimeline, withStats);
            }
        }
        if (command == "stats" && args.size() == 2) {
            return runStats(cache);
        }
        if (command == "gc" && args.size() == 2) {
            return runGc(cache);
        }
        if (command == "export" &&
            (args.size() == 3 || args.size() == 4)) {
            return runExport(cache, args[2],
                             args.size() == 4 ? args[3] : "shtrace_cached");
        }
    } catch (const Error& e) {
        std::cerr << "shtrace-store: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
