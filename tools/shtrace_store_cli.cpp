// shtrace-store -- inspect and maintain a persistent characterization
// store (docs/STORE.md).
//
//   shtrace-store list <dir>                 one line per valid entry
//   shtrace-store show <dir> <key>           framing + raw payload text
//   shtrace-store gc <dir>                   delete corrupt/stale entries
//   shtrace-store export <dir> <out.lib> [library-name]
//                                            Liberty-lite from cached rows
//
// Exit status: 0 on success, 1 on a failed operation (unknown key, write
// error), 2 on a usage error.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "shtrace/chz/library.hpp"
#include "shtrace/store/cache.hpp"
#include "shtrace/store/key.hpp"
#include "shtrace/store/serialize.hpp"
#include "shtrace/util/table.hpp"

namespace {

using namespace shtrace;

int usage() {
    std::cerr << "usage: shtrace-store list <dir>\n"
                 "       shtrace-store show <dir> <key>\n"
                 "       shtrace-store gc <dir>\n"
                 "       shtrace-store export <dir> <out.lib> "
                 "[library-name]\n";
    return 2;
}

std::size_t payloadLines(const store::StoreEntry& entry) {
    return static_cast<std::size_t>(
        std::count(entry.payload.begin(), entry.payload.end(), '\n'));
}

int runList(const store::ResultStore& cache) {
    const std::vector<store::StoreEntry> entries = cache.list();
    TablePrinter table({"key", "kind", "label", "problem", "lines"});
    for (const store::StoreEntry& entry : entries) {
        table.addRowValues(store::toHexKey(entry.key), entry.kind,
                           entry.label.empty() ? "-" : entry.label,
                           store::toHexKey(entry.problem),
                           static_cast<int>(payloadLines(entry)));
    }
    table.print(std::cout);
    std::cout << entries.size() << " entries in " << cache.dir() << "\n";
    return 0;
}

/// Decodes the payload's trace incident log (characterize and library_row
/// entries carry one since format v3) into a human-readable block.
void showDiagnostics(const store::StoreEntry& entry) {
    TraceDiagnostics diag;
    std::string summary;
    try {
        if (entry.kind == store::kKindCharacterize) {
            const CharacterizeResult r =
                store::deserializeCharacterizeResult(entry.payload);
            diag = r.contour.diagnostics;
            summary = r.failureReason;
        } else if (entry.kind == store::kKindLibraryRow) {
            const LibraryRow r = store::deserializeLibraryRow(entry.payload);
            diag = r.diagnostics;
            summary = r.failureReason;
        } else {
            return;  // other kinds carry no trace
        }
    } catch (const store::StoreFormatError&) {
        return;  // raw payload above is all we can show
    }
    std::cout << "trace   "
              << (diag.empty() ? "clean (no recorded events)"
                               : diag.summary())
              << "\n";
    if (!summary.empty()) {
        std::cout << "reason  " << summary << "\n";
    }
    for (const TraceEvent& e : diag.events) {
        std::cout << "  " << toString(e.kind) << " [" << toString(e.phase)
                  << "] at (" << e.at.setup << ", " << e.at.hold
                  << ") alpha=" << e.stepLength
                  << " iters=" << e.correctorIterations << "\n";
    }
}

int runShow(const store::ResultStore& cache, const std::string& keyText) {
    const auto key = store::parseHexKey(keyText);
    if (!key) {
        std::cerr << "shtrace-store: '" << keyText
                  << "' is not a 16-hex-digit key\n";
        return 2;
    }
    const auto entry = cache.load(*key);
    if (!entry) {
        std::cerr << "shtrace-store: no valid entry "
                  << store::toHexKey(*key) << " in " << cache.dir() << "\n";
        return 1;
    }
    std::cout << "key     " << store::toHexKey(entry->key) << "\n"
              << "problem " << store::toHexKey(entry->problem) << "\n"
              << "kind    " << entry->kind << "\n"
              << "label   " << (entry->label.empty() ? "-" : entry->label)
              << "\n";
    showDiagnostics(*entry);
    std::cout << "payload (" << payloadLines(*entry) << " lines)\n"
              << entry->payload;
    return 0;
}

int runGc(const store::ResultStore& cache) {
    const store::ResultStore::GcReport report = cache.gc();
    std::cout << "kept " << report.kept << ", removed " << report.removed
              << " in " << cache.dir() << "\n";
    return 0;
}

int runExport(const store::ResultStore& cache, const std::string& outPath,
              const std::string& libraryName) {
    std::vector<LibraryRow> rows;
    for (const store::StoreEntry& entry : cache.list()) {
        if (entry.kind != store::kKindLibraryRow) {
            continue;
        }
        try {
            rows.push_back(store::deserializeLibraryRow(entry.payload));
        } catch (const store::StoreFormatError& e) {
            std::cerr << "shtrace-store: skipping "
                      << store::toHexKey(entry.key) << ": " << e.what()
                      << "\n";
        }
    }
    if (rows.empty()) {
        std::cerr << "shtrace-store: no library_row entries in "
                  << cache.dir() << "\n";
        return 1;
    }
    // list() orders by content key; a report reads better by cell name.
    std::sort(rows.begin(), rows.end(),
              [](const LibraryRow& a, const LibraryRow& b) {
                  return a.cell < b.cell;
              });
    writeLibertyLite(rows, outPath, libraryName);
    std::cout << "wrote " << rows.size() << " cells to " << outPath << "\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() < 2) {
        return usage();
    }
    const std::string& command = args[0];
    try {
        const store::ResultStore cache(args[1]);
        if (command == "list" && args.size() == 2) {
            return runList(cache);
        }
        if (command == "show" && args.size() == 3) {
            return runShow(cache, args[2]);
        }
        if (command == "gc" && args.size() == 2) {
            return runGc(cache);
        }
        if (command == "export" &&
            (args.size() == 3 || args.size() == 4)) {
            return runExport(cache, args[2],
                             args.size() == 4 ? args[3] : "shtrace_cached");
        }
    } catch (const Error& e) {
        std::cerr << "shtrace-store: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
