// shtrace-load -- load driver and soak bench for shtrace-served.
//
// Two modes:
//
//   shtrace-load run --port P [--requests N] [--concurrency C]
//                    [--distinct K] [--max-points M] [--cell NAME]
//     Fires N characterization requests over C keep-alive connections at
//     an already-running daemon (K distinct physics variants round-robin)
//     and prints a JSON latency/throughput summary to stdout.
//
//   shtrace-load soak --daemon PATH [--out results/bench_serve.json]
//                     [--cache-dir DIR] [--clients N] [--max-points M]
//     The full service-level benchmark: forks the daemon on an ephemeral
//     port and walks it through four asserted phases --
//       cold      one fresh request, full trace             (baseline)
//       warm      the same request again; must be a store hit and
//                 >= 10x faster than cold
//       coalesce  N concurrent identical fresh requests; exactly ONE
//                 computation may run (N-1 responses coalesced)
//       drain     fresh requests in flight, SIGTERM; every response
//                 must still arrive 200 and the daemon must exit 0
//     Writes the numbers to --out and exits nonzero if any phase's
//     assertion fails. scripts/bench_serve.sh wraps this mode.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "shtrace/serve/http.hpp"
#include "shtrace/serve/json.hpp"

namespace {

using shtrace::serve::HttpClient;
using shtrace::serve::JsonValue;
using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// A request body for the in-tree TSPC/C2MOS/... zoo with a small trace
/// budget. `variant` perturbs the data transition time so distinct
/// variants are distinct physics (distinct cache keys); variant 0 is the
/// cell's default card.
std::string requestBody(const std::string& cell, int maxPoints,
                        int variant, const std::string& label) {
    JsonValue tracer = JsonValue::object();
    JsonValue bounds = JsonValue::object();
    bounds.set("setupMin", 80e-12);
    bounds.set("setupMax", 700e-12);
    bounds.set("holdMin", 40e-12);
    bounds.set("holdMax", 500e-12);
    tracer.set("bounds", std::move(bounds));
    tracer.set("maxPoints", maxPoints);

    JsonValue body = JsonValue::object();
    body.set("cell", cell);
    body.set("label", label);
    if (variant != 0) {
        JsonValue cellOptions = JsonValue::object();
        // +-0.01 ps steps around the 100 ps default: physically inert,
        // key-distinct.
        cellOptions.set("dataTransitionTime", 0.1e-9 + variant * 1e-17);
        body.set("cellOptions", std::move(cellOptions));
    }
    body.set("tracer", std::move(tracer));
    return writeJson(body);
}

struct Sample {
    double millis = 0.0;
    int status = 0;
    bool ok = false;         ///< response body ok=true
    bool coalesced = false;  ///< served.coalesced
    bool cacheHit = false;   ///< served.cacheHit
    std::string requestId;   ///< response requestId == X-Request-Id
};

Sample postOnce(int port, const std::string& body, int timeoutMillis) {
    Sample sample;
    const auto start = Clock::now();
    HttpClient client(static_cast<std::uint16_t>(port), timeoutMillis);
    HttpClient::Response response =
        client.request("POST", "/v1/characterize", body);
    sample.millis = millisSince(start);
    sample.status = response.status;
    if (response.status == 200) {
        const JsonValue doc = shtrace::serve::parseJson(response.body);
        if (const JsonValue* ok = doc.find("ok")) {
            sample.ok = ok->asBool();
        }
        if (const JsonValue* id = doc.find("requestId")) {
            sample.requestId = id->asString();
        }
        if (const JsonValue* served = doc.find("served")) {
            if (const JsonValue* c = served->find("coalesced")) {
                sample.coalesced = c->asBool();
            }
            if (const JsonValue* h = served->find("cacheHit")) {
                sample.cacheHit = h->asBool();
            }
        }
    }
    return sample;
}

/// Which tier answered: a fresh computation, a coalesced wait on another
/// request's computation, or a persistent-store hit. Latency is only
/// comparable within a tier, so the summaries split on it.
enum class Outcome { Fresh, Coalesced, StoreHit };

Outcome outcomeOf(const Sample& s) {
    if (s.coalesced) {
        return Outcome::Coalesced;
    }
    return s.cacheHit ? Outcome::StoreHit : Outcome::Fresh;
}

/// Fires `total` requests over `concurrency` threads (one keep-alive
/// connection each); bodies round-robin over `bodies`.
std::vector<Sample> fire(int port, const std::vector<std::string>& bodies,
                         int total, int concurrency, int timeoutMillis) {
    std::vector<Sample> samples(static_cast<std::size_t>(total));
    std::atomic<int> next{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(concurrency));
    for (int c = 0; c < concurrency; ++c) {
        threads.emplace_back([&] {
            for (;;) {
                const int i = next.fetch_add(1);
                if (i >= total) {
                    return;
                }
                const std::string& body =
                    bodies[static_cast<std::size_t>(i) % bodies.size()];
                try {
                    samples[static_cast<std::size_t>(i)] =
                        postOnce(port, body, timeoutMillis);
                } catch (const std::exception&) {
                    samples[static_cast<std::size_t>(i)].status = -1;
                }
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    return samples;
}

double percentile(std::vector<double> values, double p) {
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// {count,p50,...,p999,max} over one outcome class's latencies.
JsonValue percentileBlock(const std::vector<double>& millis) {
    JsonValue out = JsonValue::object();
    out.set("count", static_cast<int>(millis.size()));
    out.set("p50Millis", percentile(millis, 50));
    out.set("p90Millis", percentile(millis, 90));
    out.set("p99Millis", percentile(millis, 99));
    out.set("p999Millis", percentile(millis, 99.9));
    out.set("maxMillis",
            millis.empty()
                ? 0.0
                : *std::max_element(millis.begin(), millis.end()));
    return out;
}

JsonValue latencySummary(const std::vector<Sample>& samples,
                         double wallMillis) {
    std::vector<double> millis, freshMillis, coalescedMillis,
        storeHitMillis;
    int http200 = 0, http503 = 0, errors = 0, okTrue = 0, coalesced = 0,
        cacheHits = 0, freshTraces = 0;
    for (const Sample& s : samples) {
        if (s.status == 200) {
            ++http200;
            millis.push_back(s.millis);
            switch (outcomeOf(s)) {
                case Outcome::Fresh:
                    // Neither shared nor store-served: this response paid
                    // for a full trace. "N identical requests -> 1 fresh
                    // trace" is the coalescing+store contract.
                    freshTraces += s.ok ? 1 : 0;
                    freshMillis.push_back(s.millis);
                    break;
                case Outcome::Coalesced:
                    coalescedMillis.push_back(s.millis);
                    break;
                case Outcome::StoreHit:
                    storeHitMillis.push_back(s.millis);
                    break;
            }
        } else if (s.status == 503) {
            ++http503;
        } else {
            ++errors;
        }
        okTrue += s.ok ? 1 : 0;
        coalesced += s.coalesced ? 1 : 0;
        cacheHits += s.cacheHit ? 1 : 0;
    }
    JsonValue out = JsonValue::object();
    out.set("requests", static_cast<int>(samples.size()));
    out.set("http200", http200);
    out.set("http503", http503);
    out.set("transportErrors", errors);
    out.set("okTrue", okTrue);
    out.set("coalesced", coalesced);
    out.set("cacheHits", cacheHits);
    out.set("freshTraces", freshTraces);
    out.set("p50Millis", percentile(millis, 50));
    out.set("p90Millis", percentile(millis, 90));
    out.set("p99Millis", percentile(millis, 99));
    out.set("p999Millis", percentile(millis, 99.9));
    out.set("maxMillis",
            millis.empty()
                ? 0.0
                : *std::max_element(millis.begin(), millis.end()));
    // One latency distribution per serving tier: fresh computations live
    // on a different scale from coalesced waits and store hits, and a
    // blended percentile hides regressions in all three.
    JsonValue byOutcome = JsonValue::object();
    byOutcome.set("fresh", percentileBlock(freshMillis));
    byOutcome.set("coalesced", percentileBlock(coalescedMillis));
    byOutcome.set("storeHit", percentileBlock(storeHitMillis));
    out.set("byOutcome", std::move(byOutcome));
    out.set("wallMillis", wallMillis);
    out.set("throughputRps",
            wallMillis > 0.0
                ? static_cast<double>(http200) / (wallMillis / 1000.0)
                : 0.0);
    return out;
}

/// Scrapes GET /debug/requests and reduces the flight recorder's
/// per-stage breakdowns to per-tier means: leaders (queue-wait,
/// store-read, compute, store-publish) and followers (coalesce-wait).
JsonValue scrapeServeStages(int port) {
    HttpClient client(static_cast<std::uint16_t>(port), 10000);
    const HttpClient::Response response =
        client.request("GET", "/debug/requests");
    const JsonValue doc = shtrace::serve::parseJson(response.body);

    double queueWait = 0, storeRead = 0, compute = 0, storePublish = 0,
           leaderWall = 0, coalesceWait = 0;
    int leaders = 0, followers = 0;
    if (const JsonValue* requests = doc.find("requests")) {
        for (const JsonValue& r : requests->asArray()) {
            const JsonValue* stages = r.find("stages");
            const JsonValue* c = r.find("coalesced");
            if (stages == nullptr || c == nullptr) {
                continue;
            }
            auto stage = [&](const char* name) {
                const JsonValue* v = stages->find(name);
                return v != nullptr ? v->asNumber() : 0.0;
            };
            if (c->asBool()) {
                ++followers;
                coalesceWait += stage("coalesceWaitMillis");
            } else {
                ++leaders;
                queueWait += stage("queueWaitMillis");
                storeRead += stage("storeReadMillis");
                compute += stage("computeMillis");
                storePublish += stage("storePublishMillis");
                if (const JsonValue* w = r.find("wallMillis")) {
                    leaderWall += w->asNumber();
                }
            }
        }
    }

    JsonValue out = JsonValue::object();
    out.set("recordsSeen",
            doc.find("recorded") != nullptr
                ? doc.find("recorded")->asNumber()
                : 0.0);
    out.set("leaders", leaders);
    out.set("followers", followers);
    JsonValue leaderMeans = JsonValue::object();
    const double ln = leaders > 0 ? static_cast<double>(leaders) : 1.0;
    leaderMeans.set("queueWaitMillis", queueWait / ln);
    leaderMeans.set("storeReadMillis", storeRead / ln);
    leaderMeans.set("computeMillis", compute / ln);
    leaderMeans.set("storePublishMillis", storePublish / ln);
    leaderMeans.set("wallMillis", leaderWall / ln);
    out.set("leaderMeans", std::move(leaderMeans));
    JsonValue followerMeans = JsonValue::object();
    followerMeans.set(
        "coalesceWaitMillis",
        coalesceWait /
            (followers > 0 ? static_cast<double>(followers) : 1.0));
    out.set("followerMeans", std::move(followerMeans));
    return out;
}

/// Writes the serve per-stage breakdown as a bench_obs fragment next to
/// the other benches' fragments and regenerates the merged
/// bench_obs.json, byte-compatible with bench/bench_common.hpp's format
/// (fragments in <resultsDir>/bench_obs/<stem>.json; merged report keyed
/// by stem, sorted).
void writeServeStagesFragment(const std::string& resultsDir,
                              const JsonValue& stages, double wallSeconds,
                              int requestCount) {
    namespace fs = std::filesystem;
    std::ostringstream frag;
    frag.precision(17);
    frag << "{\n\"bench\": \"serve_stages\",\n\"wall_seconds\": "
         << wallSeconds << ",\n\"requests\": " << requestCount
         << ",\n\"stages\": " << writeJson(stages) << "\n}";

    const fs::path fragDir = fs::path(resultsDir) / "bench_obs";
    fs::create_directories(fragDir);
    {
        std::ofstream out(fragDir / "serve_stages.json",
                          std::ios::binary | std::ios::trunc);
        out << frag.str() << "\n";
    }

    std::vector<std::pair<std::string, std::string>> fragments;
    for (const fs::directory_entry& entry : fs::directory_iterator(fragDir)) {
        if (entry.path().extension() != ".json") {
            continue;
        }
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        std::string text = body.str();
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r')) {
            text.pop_back();
        }
        fragments.emplace_back(entry.path().stem().string(),
                               std::move(text));
    }
    std::sort(fragments.begin(), fragments.end());
    std::ofstream merged(fs::path(resultsDir) / "bench_obs.json",
                         std::ios::binary | std::ios::trunc);
    merged << "{\n";
    for (std::size_t i = 0; i < fragments.size(); ++i) {
        merged << "\"" << fragments[i].first
               << "\": " << fragments[i].second
               << (i + 1 < fragments.size() ? ",\n" : "\n");
    }
    merged << "}\n";
    std::cerr << "soak: serve stage fragment at "
              << (fragDir / "serve_stages.json").string() << "\n";
}

/// Scrapes one counter value from GET /metrics exposition text.
double scrapeCounter(int port, const std::string& name) {
    HttpClient client(static_cast<std::uint16_t>(port), 10000);
    const HttpClient::Response response =
        client.request("GET", "/metrics");
    std::istringstream lines(response.body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind(name + " ", 0) == 0) {
            return std::strtod(line.c_str() + name.size() + 1, nullptr);
        }
    }
    return 0.0;
}

int usage() {
    std::cerr <<
        "usage: shtrace-load run  --port P [--requests N] "
        "[--concurrency C]\n"
        "                         [--distinct K] [--max-points M] "
        "[--cell NAME]\n"
        "       shtrace-load soak --daemon PATH "
        "[--out results/bench_serve.json]\n"
        "                         [--cache-dir DIR] [--clients N] "
        "[--max-points M]\n";
    return 2;
}

// ---------------------------------------------------------------- run --

int runMode(int port, int requests, int concurrency, int distinct,
            int maxPoints, const std::string& cell) {
    std::vector<std::string> bodies;
    for (int k = 0; k < distinct; ++k) {
        bodies.push_back(requestBody(cell, maxPoints, k, "load"));
    }
    const auto start = Clock::now();
    const std::vector<Sample> samples =
        fire(port, bodies, requests, concurrency, 600000);
    JsonValue out = latencySummary(samples, millisSince(start));
    out.set("concurrency", concurrency);
    out.set("distinctBodies", distinct);
    out.set("servedComputedTotal",
            scrapeCounter(port, "shtrace_serve_computed_total"));
    out.set("servedCoalescedTotal",
            scrapeCounter(port, "shtrace_serve_coalesced_total"));
    std::cout << writeJsonPretty(out) << "\n";
    int bad = 0;
    for (const Sample& s : samples) {
        bad += (s.status == 200 || s.status == 503) ? 0 : 1;
    }
    return bad == 0 ? 0 : 1;
}

// --------------------------------------------------------------- soak --

struct DaemonProcess {
    pid_t pid = -1;
    int port = 0;
};

/// Forks the daemon on an ephemeral port and waits for it to come up.
DaemonProcess startDaemon(const std::string& daemonPath,
                          const std::string& cacheDir,
                          const std::string& portFile) {
    ::unlink(portFile.c_str());
    DaemonProcess process;
    process.pid = fork();
    if (process.pid < 0) {
        throw shtrace::Error("fork failed");
    }
    if (process.pid == 0) {
        ::execl(daemonPath.c_str(), daemonPath.c_str(), "--port", "0",
                "--port-file", portFile.c_str(), "--cache-dir",
                cacheDir.c_str(), "--queue-depth", "64",
                static_cast<char*>(nullptr));
        std::perror("execl shtrace-served");
        std::_Exit(127);
    }
    // Wait for the port file, then for /healthz.
    for (int tick = 0; tick < 200; ++tick) {
        std::ifstream in(portFile);
        if (in >> process.port && process.port > 0) {
            break;
        }
        int status = 0;
        if (::waitpid(process.pid, &status, WNOHANG) == process.pid) {
            throw shtrace::Error("daemon exited before binding");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (process.port <= 0) {
        throw shtrace::Error("daemon never wrote its port file");
    }
    for (int tick = 0; tick < 100; ++tick) {
        try {
            HttpClient client(static_cast<std::uint16_t>(process.port),
                              2000);
            if (client.request("GET", "/healthz").status == 200) {
                return process;
            }
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    throw shtrace::Error("daemon never became healthy");
}

/// Waits up to ~60 s for the daemon to exit; returns its exit code, or -1
/// on timeout/abnormal termination.
int awaitDaemonExit(pid_t pid) {
    for (int tick = 0; tick < 1200; ++tick) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
            return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return -1;
}

int soakMode(const std::string& daemonPath, const std::string& outPath,
             std::string cacheDir, int clients, int maxPoints) {
    if (cacheDir.empty()) {
        char tmpl[] = "/tmp/shtrace-soak-XXXXXX";
        if (::mkdtemp(tmpl) == nullptr) {
            throw shtrace::Error("mkdtemp failed");
        }
        cacheDir = tmpl;
    }
    const std::string portFile = cacheDir + "/daemon.port";
    std::cerr << "soak: store at " << cacheDir << "\n";

    const DaemonProcess daemon =
        startDaemon(daemonPath, cacheDir, portFile);
    std::cerr << "soak: daemon pid " << daemon.pid << " on port "
              << daemon.port << "\n";

    JsonValue report = JsonValue::object();
    report.set("daemon", daemonPath);
    report.set("port", daemon.port);
    report.set("clients", clients);
    report.set("maxPoints", maxPoints);
    std::vector<std::string> failures;

    // -- Phase 1: cold ---------------------------------------------------
    const std::string coldBody = requestBody("tspc", maxPoints, 0, "soak");
    const Sample cold = postOnce(daemon.port, coldBody, 600000);
    std::cerr << "soak: cold " << cold.millis << " ms (status "
              << cold.status << ")\n";
    if (cold.status != 200 || !cold.ok) {
        failures.push_back("cold request did not succeed");
    }
    if (cold.cacheHit) {
        failures.push_back("cold request claimed a cache hit");
    }
    JsonValue coldJson = JsonValue::object();
    coldJson.set("millis", cold.millis);
    coldJson.set("ok", cold.ok);
    report.set("cold", std::move(coldJson));

    // -- Phase 2: warm (same body -> store hit, >= 10x faster) -----------
    const Sample warm = postOnce(daemon.port, coldBody, 600000);
    const double speedup =
        warm.millis > 0.0 ? cold.millis / warm.millis : 0.0;
    std::cerr << "soak: warm " << warm.millis << " ms (cacheHit="
              << (warm.cacheHit ? "true" : "false") << ", speedup "
              << speedup << "x)\n";
    if (warm.status != 200 || !warm.ok) {
        failures.push_back("warm request did not succeed");
    }
    if (!warm.cacheHit) {
        failures.push_back("warm request missed the store");
    }
    if (speedup < 10.0) {
        failures.push_back("warm speedup below 10x");
    }
    JsonValue warmJson = JsonValue::object();
    warmJson.set("millis", warm.millis);
    warmJson.set("cacheHit", warm.cacheHit);
    warmJson.set("speedup", speedup);
    report.set("warm", std::move(warmJson));

    // -- Phase 3: coalesce (N concurrent identical -> 1 computation) -----
    const double computedBefore =
        scrapeCounter(daemon.port, "shtrace_serve_computed_total");
    const std::string burstBody =
        requestBody("tspc", maxPoints, 1, "soak-burst");
    std::vector<std::string> burst(1, burstBody);
    const auto burstStart = Clock::now();
    const std::vector<Sample> burstSamples =
        fire(daemon.port, burst, clients, clients, 600000);
    const double burstWall = millisSince(burstStart);
    const double computedAfter =
        scrapeCounter(daemon.port, "shtrace_serve_computed_total");
    const double computedDelta = computedAfter - computedBefore;
    int burstOk = 0, burstCoalesced = 0;
    for (const Sample& s : burstSamples) {
        burstOk += (s.status == 200 && s.ok) ? 1 : 0;
        burstCoalesced += s.coalesced ? 1 : 0;
    }
    std::cerr << "soak: coalesce " << clients << " clients -> "
              << computedDelta << " computation(s), " << burstCoalesced
              << " coalesced\n";
    if (burstOk != clients) {
        failures.push_back("coalesce burst had failed responses");
    }
    if (computedDelta != 1.0) {
        failures.push_back("coalesce burst ran more than one computation");
    }
    if (burstCoalesced != clients - 1) {
        failures.push_back("coalesce burst follower count wrong");
    }
    JsonValue burstJson = JsonValue::object();
    burstJson.set("clients", clients);
    burstJson.set("ok", burstOk);
    burstJson.set("coalesced", burstCoalesced);
    burstJson.set("computations", computedDelta);
    burstJson.set("wallMillis", burstWall);
    report.set("coalesce", std::move(burstJson));

    // -- Phase 4: warm throughput ----------------------------------------
    std::vector<std::string> warmBodies{coldBody, burstBody};
    const auto tpStart = Clock::now();
    const std::vector<Sample> tpSamples =
        fire(daemon.port, warmBodies, 24, 4, 600000);
    const double tpWall = millisSince(tpStart);
    report.set("warmThroughput", latencySummary(tpSamples, tpWall));

    // -- Stage breakdown: flight recorder -> bench_obs fragment ----------
    // Must happen before drain: /debug/requests dies with the daemon.
    try {
        const JsonValue stages = scrapeServeStages(daemon.port);
        report.set("serveStages", stages);
        if (!outPath.empty()) {
            const std::size_t slash = outPath.find_last_of('/');
            const std::string resultsDir =
                slash == std::string::npos ? std::string(".")
                                           : outPath.substr(0, slash);
            writeServeStagesFragment(
                resultsDir, stages,
                (cold.millis + warm.millis + burstWall + tpWall) / 1000.0,
                2 + clients + 24);
        }
    } catch (const std::exception& e) {
        failures.push_back(std::string("stage scrape failed: ") + e.what());
    }

    // -- Phase 5: drain (SIGTERM with work in flight -> all 200, exit 0) -
    const int drainJobs = 3;
    std::vector<std::thread> drainThreads;
    std::vector<Sample> drainSamples(drainJobs);
    for (int i = 0; i < drainJobs; ++i) {
        drainThreads.emplace_back([&, i] {
            // Fresh physics per job: these are real computations that
            // SIGTERM must let finish.
            const std::string body =
                requestBody("tspc", maxPoints, 10 + i, "soak-drain");
            try {
                drainSamples[static_cast<std::size_t>(i)] =
                    postOnce(daemon.port, body, 600000);
            } catch (const std::exception&) {
                drainSamples[static_cast<std::size_t>(i)].status = -1;
            }
        });
    }
    // Let the jobs admit, then pull the trigger mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ::kill(daemon.pid, SIGTERM);
    for (auto& t : drainThreads) {
        t.join();
    }
    const int exitCode = awaitDaemonExit(daemon.pid);
    int drainOk = 0;
    for (const Sample& s : drainSamples) {
        drainOk += (s.status == 200 && s.ok) ? 1 : 0;
    }
    std::cerr << "soak: drain " << drainOk << "/" << drainJobs
              << " responses after SIGTERM, daemon exit " << exitCode
              << "\n";
    if (drainOk != drainJobs) {
        failures.push_back("drain dropped in-flight requests");
    }
    if (exitCode != 0) {
        failures.push_back("daemon exit code nonzero after drain");
    }
    JsonValue drainJson = JsonValue::object();
    drainJson.set("inflightJobs", drainJobs);
    drainJson.set("completed", drainOk);
    drainJson.set("daemonExitCode", exitCode);
    report.set("drain", std::move(drainJson));

    // -- Report ----------------------------------------------------------
    JsonValue failJson = JsonValue::array();
    for (const std::string& f : failures) {
        failJson.push(f);
    }
    report.set("failures", std::move(failJson));
    report.set("passed", failures.empty());

    if (!outPath.empty()) {
        std::ofstream out(outPath, std::ios::trunc);
        out << writeJsonPretty(report) << "\n";
        if (!out) {
            std::cerr << "soak: cannot write " << outPath << "\n";
            return 1;
        }
        std::cerr << "soak: report at " << outPath << "\n";
    } else {
        std::cout << writeJsonPretty(report) << "\n";
    }
    for (const std::string& f : failures) {
        std::cerr << "soak: FAIL: " << f << "\n";
    }
    return failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        return usage();
    }
    const std::string mode = argv[1];
    std::string daemonPath, outPath, cacheDir, cell = "tspc";
    int port = 0, requests = 16, concurrency = 4, distinct = 1;
    int maxPoints = 4, clients = 8;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "error: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            port = std::atoi(value());
        } else if (arg == "--requests") {
            requests = std::atoi(value());
        } else if (arg == "--concurrency") {
            concurrency = std::atoi(value());
        } else if (arg == "--distinct") {
            distinct = std::atoi(value());
        } else if (arg == "--max-points") {
            maxPoints = std::atoi(value());
        } else if (arg == "--cell") {
            cell = value();
        } else if (arg == "--daemon") {
            daemonPath = value();
        } else if (arg == "--out") {
            outPath = value();
        } else if (arg == "--cache-dir") {
            cacheDir = value();
        } else if (arg == "--clients") {
            clients = std::atoi(value());
        } else {
            return usage();
        }
    }

    try {
        if (mode == "run") {
            if (port <= 0 || requests <= 0 || concurrency <= 0 ||
                distinct <= 0) {
                return usage();
            }
            return runMode(port, requests, concurrency, distinct,
                           maxPoints, cell);
        }
        if (mode == "soak") {
            if (daemonPath.empty() || clients < 2) {
                return usage();
            }
            return soakMode(daemonPath, outPath, cacheDir, clients,
                            maxPoints);
        }
    } catch (const std::exception& e) {
        std::cerr << "shtrace-load: fatal: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
