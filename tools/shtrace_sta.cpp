// shtrace-sta -- contour-aware static timing analysis over a gate-level
// netlist (docs/STA.md).
//
//   shtrace-sta <design.stanet> [options]
//     --cache <dir>     persistent characterization store (recommended:
//                       reruns and sibling designs reuse traces)
//     --threads <n>     worker threads (0 = hardware concurrency)
//     --max-points <n>  tracer point budget per cell contour (default 24)
//     --nets            also print the per-net arrival/required table
//     --trace-out <p>   write a Chrome trace of the run (per-level sweep
//                       spans, per-cell characterizations) to <p>
//
// Every register endpoint is checked twice: against the conventional
// single (setup, hold) knee pair a classical library would publish, and
// against the full interdependent ShiaContour. The difference column is
// the paper's payoff: endpoints the knee flags that the contour proves
// safe ("recovered").
//
// Exit status: 0 when the design meets timing under the contour check
// (classical violations alone do not fail the run -- that pessimism is
// the point), 1 on analysis failure or usage error, 2 when one or more
// endpoints genuinely violate (SHIA check fails).
#include <iostream>
#include <string>

#include "shtrace/obs/obs.hpp"
#include "shtrace/sta/engine.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

namespace {

using namespace shtrace;

int usage() {
    std::cerr << "usage: shtrace-sta <design.stanet> [--cache <dir>] "
                 "[--threads <n>] [--max-points <n>] [--nets] "
                 "[--trace-out <path>]\n";
    return 1;
}

std::string fmt(double seconds) { return formatEngineering(seconds, "s"); }

}  // namespace

int main(int argc, char** argv) {
    std::string netlistPath;
    std::string cacheDir;
    std::string traceOut;
    int threads = 0;
    int maxPoints = 24;
    bool printNets = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache" && i + 1 < argc) {
            cacheDir = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::stoi(argv[++i]);
        } else if (arg == "--max-points" && i + 1 < argc) {
            maxPoints = std::stoi(argv[++i]);
        } else if (arg == "--nets") {
            printNets = true;
        } else if (arg == "--trace-out" && i + 1 < argc) {
            traceOut = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "shtrace-sta: unknown option '" << arg << "'\n";
            return usage();
        } else if (netlistPath.empty()) {
            netlistPath = arg;
        } else {
            return usage();
        }
    }
    if (netlistPath.empty()) {
        return usage();
    }

    sta::Design design;
    try {
        design = sta::loadDesign(netlistPath);
    } catch (const std::exception& e) {
        std::cerr << "shtrace-sta: " << e.what() << "\n";
        return 1;
    }

    RunConfig config = RunConfig::defaults().withThreads(threads);
    config.tracer.maxPoints = maxPoints;
    if (!cacheDir.empty()) {
        config.cacheDir = cacheDir;
    }
    if (!traceOut.empty()) {
        config.withSpanTrace(traceOut);
        // An explicit trace request wants the whole story: fine detail
        // records the per-level sweep spans, not just the run phases.
        obs::setDetail(obs::Detail::Fine);
    }

    const sta::StaReport report =
        sta::analyzeDesign(design, sta::builtinStaCells(), config);
    if (!report.success) {
        std::cerr << "shtrace-sta: " << report.failureReason << "\n";
        return 1;
    }

    std::cout << "design " << report.design << ": clock period "
              << fmt(report.clockPeriod) << ", "
              << report.endpoints.size() << " register endpoints, "
              << report.nets.size() << " nets\n";
    for (const auto& [name, cell] : report.cells) {
        std::cout << "  cell " << name << ": knee ("
                  << fmt(cell.knee.setup) << ", " << fmt(cell.knee.hold)
                  << "), contour " << cell.contour->points().size()
                  << " points, hold asymptote "
                  << fmt(cell.contour->minHold()) << ", clock-to-Q "
                  << fmt(cell.clockToQ) << " (degraded "
                  << fmt(cell.degradedClockToQ) << ")\n";
    }
    std::cout << "\n";

    TablePrinter endpoints({"endpoint", "cell", "avail setup", "avail hold",
                            "classical", "SHIA", "SHIA hold slack",
                            "verdict"});
    for (const sta::EndpointCheck& ep : report.endpoints) {
        std::string classical =
            ep.classicalSetupOk && ep.classicalHoldOk ? "PASS" : "VIOLATION";
        std::string verdict = "pass";
        if (!ep.shiaOk) {
            verdict = "VIOLATION";
        } else if (ep.recovered) {
            verdict = "recovered";
        }
        endpoints.addRowValues(
            ep.reg, ep.cell, fmt(ep.availSetup), fmt(ep.availHold),
            classical, ep.shiaOk ? "PASS" : "VIOLATION",
            ep.shiaFeasible ? fmt(ep.shiaHoldSlack)
                            : std::string("infeasible"),
            verdict);
    }
    endpoints.print(std::cout);

    if (printNets) {
        std::cout << "\n";
        TablePrinter nets({"net", "level", "at min", "at max",
                           "setup slack", "hold slack"});
        for (const sta::NetTiming& t : report.nets) {
            nets.addRowValues(t.net, std::to_string(t.level), fmt(t.atMin),
                              fmt(t.atMax), fmt(t.setupSlack),
                              fmt(t.holdSlack));
        }
        nets.print(std::cout);
    }

    std::cout << "\nsummary: classical setup/hold violations "
              << report.classicalSetupViolations << "/"
              << report.classicalHoldViolations << ", SHIA violations "
              << report.shiaViolations << ", recovered endpoints "
              << report.recoveredEndpoints << "\n";
    std::cout << "worst slack: setup " << fmt(report.worstSetupSlack)
              << ", hold (classical) " << fmt(report.classicalWorstHoldSlack)
              << ", hold (SHIA) " << fmt(report.shiaWorstHoldSlack) << "\n";
    std::cout << "cost: " << report.stats.transientSolves << " transients, "
              << report.stats.cacheHits << " store hits, "
              << report.stats.cacheMisses << " misses\n";

    return report.shiaViolations > 0 ? 2 : 0;
}
