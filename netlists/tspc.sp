* TSPC positive edge-triggered register (Yuan-Svensson 9T + output inverter)
* Matches buildTspcRegister() defaults; characterize with:
*   netlist_tool netlists/tspc.sp q
.model n1 NMOS VT0=0.45 KP=60u LAMBDA=0.06 W=0.6u L=0.25u CGS=0.84f CGD=0.84f CGB=0.12f CDB=0.48f CSB=0.48f
.model p1 PMOS VT0=0.50 KP=25u LAMBDA=0.10 W=1.2u L=0.25u CGS=1.68f CGD=1.68f CGB=0.24f CDB=0.96f CSB=0.96f
Vdd   vdd 0 2.5
Vclk  clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vdata d   0 DATAPULSE(2.5 0 11.05n 0.1n)
* stage 1: p-section (clock-gated pull-up)
MP1a s1 d   vdd vdd p1
MP1b x1 clk s1  vdd p1
MN1  x1 d   0   0   n1
* stage 2: precharge / evaluate
MP2  y  clk vdd vdd p1
MN3  y  x1  s2  0   n1
MN4  s2 clk 0   0   n1
* stage 3: hold / evaluate
MP3  qb y   vdd vdd p1
MN5  qb clk s3  0   n1
MN6  s3 y   0   0   n1
* output inverter + parasitics
MP4  q  qb  vdd vdd p1
MN7  q  qb  0   0   n1
Cload q 0 20f
Cx1 x1 0 2f
Cy  y  0 2f
Cqb qb 0 2f
.end
