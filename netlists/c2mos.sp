* C2MOS positive edge-triggered master/slave register (paper Fig. 11a)
* clk-bar is delayed 0.3 ns after clk, creating the overlap that imposes a
* positive hold time (and the Fig. 11(b) false transitions).
* Characterize with:  netlist_tool netlists/c2mos.sp q
.model n1 NMOS VT0=0.45 KP=60u LAMBDA=0.06 W=0.6u L=0.25u CGS=0.84f CGD=0.84f CGB=0.12f CDB=0.48f CSB=0.48f
.model p1 PMOS VT0=0.50 KP=25u LAMBDA=0.10 W=1.2u L=0.25u CGS=1.68f CGD=1.68f CGB=0.24f CDB=0.96f CSB=0.96f
Vdd   vdd  0 2.5
Vclk  clk  0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vclkb clkb 0 CLOCK(0 2.5 10n 1.3n 0.1n 0.1n 0.5 INV)
Vdata d    0 DATAPULSE(2.5 0 11.05n 0.1n)
* master C2MOS inverter: transparent when CLK=0
MP1 m1 d    vdd vdd p1
MP2 x  clk  m1  vdd p1
MN1 x  clkb m2  0   n1
MN2 m2 d    0   0   n1
* slave C2MOS inverter: transparent when CLK=1
MP3 sp x    vdd vdd p1
MP4 q  clkb sp  vdd p1
MN3 q  clk  sn  0   n1
MN4 sn x    0   0   n1
* parasitics
Cload q 0 20f
Cx x 0 2f
.end
