#!/usr/bin/env bash
# In-repo Prometheus text-exposition lint -- no network, no external
# dependencies beyond awk. Validates the invariants the obs exporter
# promises (docs/OBSERVABILITY.md):
#
#   * every sample is preceded by # HELP and # TYPE for its metric family
#   * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
#   * TYPE is one of counter|gauge|histogram, stated once per family
#   * counters end in _total
#   * every counter/gauge family has a sample
#   * histogram buckets are cumulative (non-decreasing), include
#     le="+Inf", and carry _sum and _count with _count == +Inf bucket
#
# Usage: scripts/prom_lint.sh <file.prom>
set -euo pipefail

file="${1:?usage: scripts/prom_lint.sh <file.prom>}"

awk '
function err(msg) { printf "prom_lint: %s:%d: %s\n", FILENAME, FNR, msg; bad = 1 }
/^# HELP / {
    if (NF < 4) err("HELP without text")
    name = $3
    if (help[name]++) err("duplicate HELP for " name)
    next
}
/^# TYPE / {
    name = $3; t = $4
    if (!(name in help)) err("TYPE before HELP for " name)
    if (name in type) err("duplicate TYPE for " name)
    if (t != "counter" && t != "gauge" && t != "histogram")
        err("unknown type \"" t "\" for " name)
    type[name] = t
    if (t == "counter" && name !~ /_total$/)
        err("counter " name " must end in _total")
    next
}
/^#/ { next }
/^[ \t]*$/ { next }
{
    metric = $1
    base = metric
    sub(/\{.*/, "", base)
    if (base !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) { err("bad metric name " base); next }
    root = base
    sub(/_(bucket|sum|count)$/, "", root)
    if (!(base in type) && !(root in type)) { err("sample without TYPE: " base); next }
    fam = (base in type) ? base : root
    seen[fam] = 1
    val = $NF
    if (val !~ /^[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$/)
        err("bad sample value \"" val "\" for " base)
    if (type[fam] == "histogram") {
        if (base ~ /_bucket$/) {
            if (metric !~ /le="/) err("bucket without le label: " metric)
            if ((fam in lastBucket) && val + 0 < lastBucket[fam])
                err("non-cumulative buckets for " fam)
            lastBucket[fam] = val + 0
            if (metric ~ /le="\+Inf"/) { infBucket[fam] = val + 0; hasInf[fam] = 1 }
        }
        if (base ~ /_sum$/)   hasSum[fam] = 1
        if (base ~ /_count$/) countVal[fam] = val + 0
    } else if (metric ~ /\{/) {
        # Our exporter emits no labels outside histogram buckets.
        err("unexpected labels on " type[fam] " " base)
    }
}
END {
    for (n in type) {
        if (!(n in seen)) { printf "prom_lint: %s declared but has no sample\n", n; bad = 1 }
        if (type[n] != "histogram") continue
        if (!(n in hasInf)) { printf "prom_lint: histogram %s missing le=\"+Inf\" bucket\n", n; bad = 1 }
        if (!(n in hasSum)) { printf "prom_lint: histogram %s missing _sum\n", n; bad = 1 }
        if (!(n in countVal)) { printf "prom_lint: histogram %s missing _count\n", n; bad = 1 }
        else if ((n in infBucket) && countVal[n] != infBucket[n]) {
            printf "prom_lint: histogram %s _count %d != +Inf bucket %d\n", \
                   n, countVal[n], infBucket[n]
            bad = 1
        }
    }
    exit bad ? 1 : 0
}
' "${file}"

echo "prom_lint: OK (${file})"
