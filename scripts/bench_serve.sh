#!/usr/bin/env bash
# Service-level soak bench for shtrace-served (docs/SERVE.md).
#
# Builds the daemon and load driver, then runs `shtrace-load soak`, which
# forks the daemon on an ephemeral port and walks it through the asserted
# phases (cold trace, warm store hit >= 10x faster, N-client coalesce
# burst with exactly one computation, SIGTERM drain with exit 0), writing
# the numbers to results/bench_serve.json.
#
#   scripts/bench_serve.sh [clients]     default 8 coalescing clients
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
CLIENTS="${1:-8}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}" --target shtrace-served shtrace-load

mkdir -p results
./build/tools/shtrace-load soak \
    --daemon ./build/tools/shtrace-served \
    --out results/bench_serve.json \
    --clients "${CLIENTS}"

echo "bench_serve: results/bench_serve.json"
