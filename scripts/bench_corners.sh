#!/usr/bin/env bash
# Regenerates results/bench_corners.json: the committed cross-corner
# surrogate report (5x5x5 TSPC PVT cube, exhaustive reference vs the
# active-learning tolerance ladder). Builds Release so the wall times are
# meaningful; the bench's exit code enforces the acceptance criterion --
# fewer than 20% of the corners traced AND max surrogate error <= 2 ps
# against the per-corner h-residual oracle.
#
#   scripts/bench_corners.sh [build-dir]   default build dir: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j "${JOBS}" --target bench_corners

mkdir -p results
"./${BUILD}/bench/bench_corners" results/bench_corners.json
echo "bench_corners.sh: OK -> results/bench_corners.json"
