#!/usr/bin/env bash
# Regenerates results/bench_hotpath.json: the committed chord-Newton
# hot-path report (Fig. 8 TSPC + Fig. 12 C2MOS contours, Jacobian reuse
# off vs on). Builds Release so the wall times are meaningful; the bench's
# exit code enforces the >=40%-fewer-factorizations acceptance criterion.
#
#   scripts/bench_hotpath.sh [build-dir]   default build dir: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j "${JOBS}" --target bench_transient_hotpath

mkdir -p results
"./${BUILD}/bench/bench_transient_hotpath" results/bench_hotpath.json
echo "bench_hotpath.sh: OK -> results/bench_hotpath.json"
