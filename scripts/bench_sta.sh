#!/usr/bin/env bash
# Regenerates results/bench_sta.json: the SHIA-STA engine over the shipped
# benchmark netlists (netlists/*.stanet), cold store then warm store. The
# bench's exit code enforces the acceptance triplet -- at least one
# classically-violating endpoint recovered with positive contour slack,
# zero false admits against the transistor-level h oracle, and a warm
# rerun that completes with zero fresh transient solves.
#
#   scripts/bench_sta.sh [build-dir]   default build dir: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j "${JOBS}" --target bench_sta

mkdir -p results
"./${BUILD}/bench/bench_sta" results/bench_sta.json
echo "bench_sta.sh: OK -> results/bench_sta.json"
