#!/usr/bin/env bash
# In-repo structured-event-log lint -- no network, nothing beyond the
# python3 stdlib (the same interpreter scripts/check.sh already drives
# its HTTP assertions with). Validates the JSON-lines contract the
# logger promises (docs/OBSERVABILITY.md, include/shtrace/obs/log.hpp):
#
#   * every line is exactly one JSON object -- no blank lines, no
#     banners, no interleaved fragments
#   * `ts`, `level`, `event` lead every record, in that order
#   * `ts` is millisecond ISO-8601 UTC ("...Z"); `level` is one of
#     debug|info|warn|error; `event` is a non-empty dotted name
#   * `trace`/`span`, when present, are 32/16 lowercase hex digits
#
# Usage: scripts/log_lint.sh <file.jsonl>
set -euo pipefail

file="${1:?usage: scripts/log_lint.sh <file.jsonl>}"

python3 - "${file}" <<'PY'
import json
import re
import sys

path = sys.argv[1]
levels = {"debug", "info", "warn", "error"}
ts_re = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z$")
event_re = re.compile(r"^[a-z][a-z0-9_.]*$")
hex_re = {"trace": re.compile(r"^[0-9a-f]{32}$"),
          "span": re.compile(r"^[0-9a-f]{16}$")}

bad = 0
records = 0


def err(line_no, message):
    global bad
    bad += 1
    print(f"log_lint: {path}:{line_no}: {message}")


with open(path, "r", encoding="utf-8") as handle:
    for n, line in enumerate(handle.read().splitlines(), 1):
        if line.strip() != line or not line:
            err(n, "not exactly one JSON object on the line")
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            err(n, f"invalid JSON: {exc}")
            continue
        if not isinstance(doc, dict):
            err(n, "line is not a JSON object")
            continue
        records += 1
        keys = list(doc.keys())
        if keys[:3] != ["ts", "level", "event"]:
            err(n, f"leading fields must be ts, level, event (got {keys[:3]})")
            continue
        if not isinstance(doc["ts"], str) or not ts_re.match(doc["ts"]):
            err(n, f"bad ts {doc['ts']!r}")
        if doc["level"] not in levels:
            err(n, f"bad level {doc['level']!r}")
        if not isinstance(doc["event"], str) or not event_re.match(doc["event"]):
            err(n, f"bad event {doc['event']!r}")
        for key, pattern in hex_re.items():
            if key in doc and (not isinstance(doc[key], str)
                               or not pattern.match(doc[key])):
                err(n, f"bad {key} {doc[key]!r}")

if records == 0:
    err(0, "no records (empty log is a lint failure: nothing was checked)")
print(f"log_lint: {path}: {records} records, {bad} problems")
sys.exit(0 if bad == 0 else 1)
PY
