#!/usr/bin/env bash
# Full local gate: the tier-1 suite plus both sanitizer sweeps.
#
#   scripts/check.sh            everything (tier-1 + tsan + asan/ubsan)
#   scripts/check.sh tier1      plain build + full ctest only
#   scripts/check.sh tsan       ThreadSanitizer build, tsan-labeled tests
#   scripts/check.sh asan       address,undefined build, store + parallel
#
# Each stage uses its own build tree (build/, build-tsan/, build-asan/) so
# the sanitizer configurations never dirty the primary cache. Exits nonzero
# on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
STAGE="${1:-all}"

run_tier1() {
    echo "== tier-1: plain build + full ctest =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "${JOBS}"
    ctest --test-dir build --output-on-failure -j "${JOBS}"
}

run_tsan() {
    echo "== tsan: ThreadSanitizer build, tsan-labeled tests =="
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHTRACE_SANITIZE=thread
    cmake --build build-tsan -j "${JOBS}" \
          --target test_parallel test_store_cache
    ctest --test-dir build-tsan -L tsan --output-on-failure -j "${JOBS}"
}

run_asan() {
    echo "== asan: address,undefined build, store + parallel tests =="
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHTRACE_SANITIZE=address,undefined
    cmake --build build-asan -j "${JOBS}" \
          --target test_store test_store_cache test_parallel
    ./build-asan/tests/test_store
    ./build-asan/tests/test_store_cache
    ./build-asan/tests/test_parallel
}

case "${STAGE}" in
    tier1) run_tier1 ;;
    tsan)  run_tsan ;;
    asan)  run_asan ;;
    all)   run_tier1; run_tsan; run_asan ;;
    *)     echo "usage: scripts/check.sh [tier1|tsan|asan|all]" >&2; exit 2 ;;
esac

echo "check.sh: ${STAGE} OK"
