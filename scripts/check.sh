#!/usr/bin/env bash
# Full local gate: the tier-1 suite plus both sanitizer sweeps.
#
#   scripts/check.sh            everything (tier-1 + tsan + asan + ubsan +
#                               sparse + bench smoke + obs)
#   scripts/check.sh tier1      plain build + full ctest only
#   scripts/check.sh tsan       ThreadSanitizer build, tsan-labeled tests
#   scripts/check.sh asan       address,undefined build, store + parallel
#   scripts/check.sh ubsan      UBSan (incl. float-divide-by-zero) build,
#                               ubsan-labeled tests (the fault-injection
#                               suite, where the NaN/Inf paths live)
#   scripts/check.sh sparse     sparse-labeled tests (CSC/LU unit tests +
#                               dense-vs-sparse backend equivalence) under
#                               BOTH the asan and ubsan builds -- index
#                               arithmetic over colPtr/rowIdx is where
#                               memory and UB bugs would hide
#   scripts/check.sh bench      build bench targets, one quick hot-path run
#   scripts/check.sh obs        metrics/tracing/flight-recorder tests,
#                               in-repo Prometheus format lint on a real
#                               Fig. 8 exposition, <2% disabled-
#                               instrumentation overhead gate on the
#                               chord-step micro kernel, then a live
#                               daemon round-trip: inbound traceparent
#                               adopted verbatim into X-Request-Id, the
#                               id resolves at /debug/requests/<id>, and
#                               the five stage durations sum to the
#                               observed wall clock within 5%
#   scripts/check.sh serve      serve-labeled tests, then a live daemon on
#                               an ephemeral port: load driver (all 200s,
#                               identical requests coalesce to one
#                               computation), GET /metrics scrape (incl.
#                               the per-stage histograms) through
#                               prom_lint.sh, /debug/requests flight-
#                               recorder scrape, SIGTERM clean drain
#                               (exit 0), log_lint.sh over the daemon's
#                               JSON-lines event log
#   scripts/check.sh corners    corners-labeled tests (surrogate math,
#                               active-learning driver, exhaustive
#                               bit-identity), then the full PVT-cube
#                               bench whose exit code asserts <20% of
#                               corners traced AND <=2 ps max surrogate
#                               error
#   scripts/check.sh sta        sta-labeled tests (netlist grammar, graph
#                               levelization, contour-aware endpoint
#                               checks, thread-count determinism), then
#                               the netlist acceptance bench: >=1
#                               classically-violating endpoint recovered
#                               with positive contour slack, zero false
#                               admits vs the transistor-level h oracle,
#                               warm store rerun with zero fresh
#                               transients
#
# Each stage uses its own build tree (build/, build-tsan/, build-asan/,
# build-ubsan/) so the sanitizer configurations never dirty the primary
# cache. Exits nonzero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
STAGE="${1:-all}"

run_tier1() {
    echo "== tier-1: plain build + full ctest =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "${JOBS}"
    ctest --test-dir build --output-on-failure -j "${JOBS}"
}

run_tsan() {
    echo "== tsan: ThreadSanitizer build, tsan-labeled tests =="
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHTRACE_SANITIZE=thread
    cmake --build build-tsan -j "${JOBS}" \
          --target test_parallel test_store_cache test_trace_robustness \
                   test_obs test_backend_equivalence test_serve \
                   test_request_obs test_sta
    ctest --test-dir build-tsan -L tsan --output-on-failure -j "${JOBS}"
}

run_sparse() {
    echo "== sparse: sparse-labeled tests under asan and ubsan =="
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHTRACE_SANITIZE=address,undefined
    cmake --build build-asan -j "${JOBS}" \
          --target test_sparse_linalg test_backend_equivalence
    ctest --test-dir build-asan -L sparse --output-on-failure -j "${JOBS}"
    cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHTRACE_SANITIZE=undefined,float-divide-by-zero
    cmake --build build-ubsan -j "${JOBS}" \
          --target test_sparse_linalg test_backend_equivalence
    ctest --test-dir build-ubsan -L sparse --output-on-failure -j "${JOBS}"
}

run_asan() {
    echo "== asan: address,undefined build, store + parallel tests =="
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHTRACE_SANITIZE=address,undefined
    cmake --build build-asan -j "${JOBS}" \
          --target test_store test_store_cache test_parallel
    ./build-asan/tests/test_store
    ./build-asan/tests/test_store_cache
    ./build-asan/tests/test_parallel
}

run_ubsan() {
    # Separate from asan's address,undefined: this build adds
    # float-divide-by-zero (not in -fsanitize=undefined by default), which
    # is exactly the class of arithmetic the fault-injection suite drives
    # through the tracer guards.
    echo "== ubsan: undefined,float-divide-by-zero build, ubsan-labeled tests =="
    cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHTRACE_SANITIZE=undefined,float-divide-by-zero
    cmake --build build-ubsan -j "${JOBS}" --target test_trace_robustness
    ctest --test-dir build-ubsan -L ubsan --output-on-failure -j "${JOBS}"
}

run_bench() {
    echo "== bench smoke: build benches, one quick hot-path repetition =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "${JOBS}" \
          --target bench_transient_hotpath bench_micro_kernels
    # The hot path bench doubles as a perf regression gate: its exit code
    # asserts reuse-on does >=40% fewer LU factorizations on both cells.
    ./build/bench/bench_transient_hotpath /tmp/bench_hotpath_smoke.json
    ./build/bench/bench_micro_kernels --benchmark_min_time=0.01 \
        --benchmark_filter='BM_Tspc(Chord|FullNewton)StepKernel'
}

run_obs() {
    echo "== obs: metrics/tracing tests, prom lint, disabled-overhead gate =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "${JOBS}" \
          --target test_obs test_stats test_store test_request_obs \
                   bench_fig8_tspc_contour bench_micro_kernels \
                   shtrace-served
    ./build/tests/test_obs
    ./build/tests/test_stats
    ./build/tests/test_store
    ./build/tests/test_request_obs
    # Lint a REAL exposition file, not a canned fixture: an instrumented
    # Fig. 8 run writes fig8_metrics.prom, and prom_lint.sh (in-repo awk,
    # no network) checks the format invariants.
    local root obsdir
    root="$(pwd)"
    obsdir="$(mktemp -d)"
    trap 'rm -rf "${obsdir}"' RETURN
    (cd "${obsdir}" && "${root}/build/bench/bench_fig8_tspc_contour" --obs obs > /dev/null)
    scripts/prom_lint.sh "${obsdir}/obs/fig8_metrics.prom"
    # Disabled-overhead gate: the spanned chord-step twin vs the plain one,
    # min-of-repetitions (the noise-robust statistic), must stay under 2%.
    ./build/bench/bench_micro_kernels \
        --benchmark_filter='^BM_TspcChordStepKernel(Spanned)?$' \
        --benchmark_repetitions=9 --benchmark_min_time=0.02 \
        | tee "${obsdir}/overhead.txt"
    awk '
        $1 == "BM_TspcChordStepKernel"        { if (!p || $2 < p) p = $2 }
        $1 == "BM_TspcChordStepKernelSpanned" { if (!s || $2 < s) s = $2 }
        END {
            if (!p || !s) { print "obs overhead: benchmarks missing"; exit 2 }
            printf "obs disabled-span overhead: %+.2f%% (gate < 2%%)\n", (s / p - 1) * 100
            exit (s / p < 1.02) ? 0 : 1
        }' "${obsdir}/overhead.txt"
    # Live-daemon acceptance round-trip (the ISSUE 10 contract): a cold
    # request carrying a fixed W3C traceparent must come back with that
    # trace id adopted verbatim in X-Request-Id, the id must resolve at
    # /debug/requests/<id>, and the five recorded stage durations must
    # sum to the observed wall clock within 5%.
    local pid port
    ./build/tools/shtrace-served --port 0 --port-file "${obsdir}/port" \
        --cache-dir "${obsdir}/store" > "${obsdir}/daemon.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do [ -s "${obsdir}/port" ] && break; sleep 0.1; done
    port="$(cat "${obsdir}/port")"
    python3 - "${port}" <<'PY'
import http.client, json, sys, time
port = int(sys.argv[1])
traceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
trace_id = traceparent.split("-")[1]
body = json.dumps({
    "cell": "tspc", "label": "check-obs",
    "tracer": {"bounds": {"setupMin": 80e-12, "setupMax": 700e-12,
                          "holdMin": 40e-12, "holdMax": 500e-12},
               "maxPoints": 3}})
conn = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
start = time.monotonic()
conn.request("POST", "/v1/characterize", body,
             {"Content-Type": "application/json",
              "traceparent": traceparent})
response = conn.getresponse()
payload = response.read()
client_wall = (time.monotonic() - start) * 1e3
assert response.status == 200, (response.status, payload)
assert response.getheader("X-Request-Id") == trace_id, \
    response.getheader("X-Request-Id")
doc = json.loads(payload)
assert doc["requestId"] == trace_id, doc.get("requestId")
assert doc["served"]["tracedByClient"] is True, doc["served"]

conn.request("GET", "/debug/requests/" + trace_id)
response = conn.getresponse()
record = json.loads(response.read())
assert response.status == 200, (response.status, record)
assert record["requestId"] == trace_id
stages = record["stages"]
stage_sum = sum(stages[k] for k in
                ("queueWaitMillis", "coalesceWaitMillis", "storeReadMillis",
                 "computeMillis", "storePublishMillis"))
wall = record["wallMillis"]
assert abs(stage_sum - wall) <= 0.05 * wall, (stage_sum, wall)
# The server-side wall must also be a faithful account of what the
# client saw (loopback transport rides in the 5% + 5 ms allowance).
assert abs(wall - client_wall) <= 0.05 * client_wall + 5.0, \
    (wall, client_wall)
print("obs round-trip: client=%.1fms server=%.1fms stage-sum=%.1fms"
      % (client_wall, wall, stage_sum))
PY
    kill -TERM "${pid}"
    wait "${pid}"
    scripts/log_lint.sh "${obsdir}/daemon.log"
}

run_serve() {
    echo "== serve: daemon end-to-end + live Prometheus scrape lint =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "${JOBS}" \
          --target test_serve shtrace-served shtrace-load
    ctest --test-dir build -L serve --output-on-failure -j "${JOBS}"
    local dir pid port
    dir="$(mktemp -d)"
    trap 'rm -rf "${dir}"' RETURN
    # Daemon output goes to a log file (NOT the inherited pipe: a pipe fd
    # held by the background daemon would stall the caller's pipeline).
    ./build/tools/shtrace-served --port 0 --port-file "${dir}/port" \
        --cache-dir "${dir}/store" > "${dir}/daemon.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do [ -s "${dir}/port" ] && break; sleep 0.1; done
    port="$(cat "${dir}/port")"
    # Eight requests, one body: every response must be a 200, duplicates
    # must coalesce, and exactly ONE response may have paid for a fresh
    # trace -- the rest were shared or store-served.
    ./build/tools/shtrace-load run --port "${port}" --requests 8 \
        --concurrency 4 --distinct 1 | tee "${dir}/load.json"
    python3 - "${dir}/load.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["http200"] == r["requests"], "non-200 responses"
assert r["coalesced"] > 0, "no coalesced duplicate"
assert r["freshTraces"] == 1, "identical requests traced more than once"
PY
    # Lint a LIVE scrape (content type and all), not a written file.
    python3 - "${port}" "${dir}/live.prom" <<'PY'
import sys, http.client
c = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=10)
c.request("GET", "/metrics")
r = c.getresponse()
assert r.status == 200, r.status
ct = r.getheader("Content-Type") or ""
assert ct.startswith("text/plain; version=0.0.4"), ct
open(sys.argv[2], "wb").write(r.read())
PY
    scripts/prom_lint.sh "${dir}/live.prom"
    # The per-stage request histograms must be present in the live scrape
    # (coalesce-wait fired because the load run coalesced duplicates).
    for metric in shtrace_serve_queue_wait_milliseconds \
                  shtrace_serve_coalesce_wait_milliseconds \
                  shtrace_serve_store_read_milliseconds \
                  shtrace_serve_compute_milliseconds \
                  shtrace_serve_store_publish_milliseconds; do
        grep -q "^${metric}_count " "${dir}/live.prom" \
            || { echo "serve: ${metric} missing from live scrape"; exit 1; }
    done
    # Flight recorder: every request the load driver sent must be
    # resolvable in the live /debug/requests listing.
    python3 - "${port}" "${dir}/load.json" <<'PY'
import http.client, json, sys
conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=10)
conn.request("GET", "/debug/requests")
response = conn.getresponse()
listing = json.loads(response.read())
assert response.status == 200, response.status
load = json.load(open(sys.argv[2]))
assert listing["recorded"] >= load["requests"], listing["recorded"]
assert len(listing["requests"]) >= 1
for record in listing["requests"]:
    stages = record["stages"]
    total = sum(stages[k] for k in
                ("queueWaitMillis", "coalesceWaitMillis", "storeReadMillis",
                 "computeMillis", "storePublishMillis"))
    wall = record["wallMillis"]
    assert abs(total - wall) <= 0.05 * max(wall, 1e-9), (total, wall)
print("serve: %d flight-recorder records, stage sums == wall"
      % listing["recorded"])
PY
    # Graceful drain: SIGTERM, and the daemon must exit 0 (wait under
    # set -e is the assertion).
    kill -TERM "${pid}"
    wait "${pid}"
    cat "${dir}/daemon.log"
    # The daemon's stderr is a structured JSON-lines event log; hold it to
    # the documented schema.
    scripts/log_lint.sh "${dir}/daemon.log"
    echo "serve: daemon drained clean"
}

run_corners() {
    echo "== corners: surrogate tests + PVT-cube acceptance bench =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "${JOBS}" \
          --target test_corner_surrogate bench_corners
    ctest --test-dir build -L corners --output-on-failure -j "${JOBS}"
    # The bench is the perf gate: exit code asserts the 5x5x5 TSPC cube
    # characterizes with <20% of the corners traced and <=2 ps max
    # surrogate error against the h-residual oracle.
    ./build/bench/bench_corners /tmp/bench_corners_smoke.json
}

run_sta() {
    echo "== sta: timing-graph engine tests + netlist acceptance bench =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "${JOBS}" --target test_sta bench_sta shtrace-sta
    ctest --test-dir build -L sta --output-on-failure -j "${JOBS}"
    # The bench is the acceptance gate (see scripts/bench_sta.sh): its
    # exit code asserts the recovery / no-false-admit / free-warm-rerun
    # triplet over the shipped netlists.
    ./build/bench/bench_sta /tmp/bench_sta_smoke.json
}

case "${STAGE}" in
    tier1)  run_tier1 ;;
    tsan)   run_tsan ;;
    asan)   run_asan ;;
    ubsan)  run_ubsan ;;
    sparse) run_sparse ;;
    bench)  run_bench ;;
    obs)    run_obs ;;
    serve)  run_serve ;;
    corners) run_corners ;;
    sta)    run_sta ;;
    all)    run_tier1; run_tsan; run_asan; run_ubsan; run_sparse; run_bench; run_obs; run_serve; run_corners; run_sta ;;
    *)      echo "usage: scripts/check.sh [tier1|tsan|asan|ubsan|sparse|bench|obs|serve|corners|sta|all]" >&2; exit 2 ;;
esac

echo "check.sh: ${STAGE} OK"
