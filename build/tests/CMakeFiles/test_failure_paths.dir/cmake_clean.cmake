file(REMOVE_RECURSE
  "CMakeFiles/test_failure_paths.dir/test_failure_paths.cpp.o"
  "CMakeFiles/test_failure_paths.dir/test_failure_paths.cpp.o.d"
  "test_failure_paths"
  "test_failure_paths.pdb"
  "test_failure_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
