file(REMOVE_RECURSE
  "CMakeFiles/test_family.dir/test_family.cpp.o"
  "CMakeFiles/test_family.dir/test_family.cpp.o.d"
  "test_family"
  "test_family.pdb"
  "test_family[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
