# Empty compiler generated dependencies file for test_family.
# This may be replaced when dependencies are built.
