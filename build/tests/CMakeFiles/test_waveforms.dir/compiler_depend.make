# Empty compiler generated dependencies file for test_waveforms.
# This may be replaced when dependencies are built.
