file(REMOVE_RECURSE
  "CMakeFiles/test_waveforms.dir/test_waveforms.cpp.o"
  "CMakeFiles/test_waveforms.dir/test_waveforms.cpp.o.d"
  "test_waveforms"
  "test_waveforms.pdb"
  "test_waveforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
