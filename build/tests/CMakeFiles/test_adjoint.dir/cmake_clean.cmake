file(REMOVE_RECURSE
  "CMakeFiles/test_adjoint.dir/test_adjoint.cpp.o"
  "CMakeFiles/test_adjoint.dir/test_adjoint.cpp.o.d"
  "test_adjoint"
  "test_adjoint.pdb"
  "test_adjoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
