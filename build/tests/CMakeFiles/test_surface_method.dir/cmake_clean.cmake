file(REMOVE_RECURSE
  "CMakeFiles/test_surface_method.dir/test_surface_method.cpp.o"
  "CMakeFiles/test_surface_method.dir/test_surface_method.cpp.o.d"
  "test_surface_method"
  "test_surface_method.pdb"
  "test_surface_method[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
