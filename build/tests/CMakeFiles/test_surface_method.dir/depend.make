# Empty dependencies file for test_surface_method.
# This may be replaced when dependencies are built.
