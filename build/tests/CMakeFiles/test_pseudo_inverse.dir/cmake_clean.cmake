file(REMOVE_RECURSE
  "CMakeFiles/test_pseudo_inverse.dir/test_pseudo_inverse.cpp.o"
  "CMakeFiles/test_pseudo_inverse.dir/test_pseudo_inverse.cpp.o.d"
  "test_pseudo_inverse"
  "test_pseudo_inverse.pdb"
  "test_pseudo_inverse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pseudo_inverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
