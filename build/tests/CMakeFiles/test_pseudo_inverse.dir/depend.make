# Empty dependencies file for test_pseudo_inverse.
# This may be replaced when dependencies are built.
