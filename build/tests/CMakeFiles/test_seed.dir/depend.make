# Empty dependencies file for test_seed.
# This may be replaced when dependencies are built.
