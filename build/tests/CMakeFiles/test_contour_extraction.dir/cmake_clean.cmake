file(REMOVE_RECURSE
  "CMakeFiles/test_contour_extraction.dir/test_contour_extraction.cpp.o"
  "CMakeFiles/test_contour_extraction.dir/test_contour_extraction.cpp.o.d"
  "test_contour_extraction"
  "test_contour_extraction.pdb"
  "test_contour_extraction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contour_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
