# Empty compiler generated dependencies file for test_gear2.
# This may be replaced when dependencies are built.
