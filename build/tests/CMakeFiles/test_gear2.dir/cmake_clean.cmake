file(REMOVE_RECURSE
  "CMakeFiles/test_gear2.dir/test_gear2.cpp.o"
  "CMakeFiles/test_gear2.dir/test_gear2.cpp.o.d"
  "test_gear2"
  "test_gear2.pdb"
  "test_gear2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gear2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
