# Empty compiler generated dependencies file for test_independent.
# This may be replaced when dependencies are built.
