# Empty compiler generated dependencies file for test_mpnr.
# This may be replaced when dependencies are built.
