file(REMOVE_RECURSE
  "CMakeFiles/test_mpnr.dir/test_mpnr.cpp.o"
  "CMakeFiles/test_mpnr.dir/test_mpnr.cpp.o.d"
  "test_mpnr"
  "test_mpnr.pdb"
  "test_mpnr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
