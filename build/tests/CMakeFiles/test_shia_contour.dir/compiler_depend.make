# Empty compiler generated dependencies file for test_shia_contour.
# This may be replaced when dependencies are built.
