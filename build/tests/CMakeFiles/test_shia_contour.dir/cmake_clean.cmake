file(REMOVE_RECURSE
  "CMakeFiles/test_shia_contour.dir/test_shia_contour.cpp.o"
  "CMakeFiles/test_shia_contour.dir/test_shia_contour.cpp.o.d"
  "test_shia_contour"
  "test_shia_contour.pdb"
  "test_shia_contour[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shia_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
