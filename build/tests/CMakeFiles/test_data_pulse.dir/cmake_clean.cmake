file(REMOVE_RECURSE
  "CMakeFiles/test_data_pulse.dir/test_data_pulse.cpp.o"
  "CMakeFiles/test_data_pulse.dir/test_data_pulse.cpp.o.d"
  "test_data_pulse"
  "test_data_pulse.pdb"
  "test_data_pulse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
