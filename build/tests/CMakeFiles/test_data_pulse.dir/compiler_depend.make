# Empty compiler generated dependencies file for test_data_pulse.
# This may be replaced when dependencies are built.
