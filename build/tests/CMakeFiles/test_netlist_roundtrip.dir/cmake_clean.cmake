file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_roundtrip.dir/test_netlist_roundtrip.cpp.o"
  "CMakeFiles/test_netlist_roundtrip.dir/test_netlist_roundtrip.cpp.o.d"
  "test_netlist_roundtrip"
  "test_netlist_roundtrip.pdb"
  "test_netlist_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
