# Empty dependencies file for test_netlist_roundtrip.
# This may be replaced when dependencies are built.
