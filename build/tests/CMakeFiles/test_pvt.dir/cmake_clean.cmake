file(REMOVE_RECURSE
  "CMakeFiles/test_pvt.dir/test_pvt.cpp.o"
  "CMakeFiles/test_pvt.dir/test_pvt.cpp.o.d"
  "test_pvt"
  "test_pvt.pdb"
  "test_pvt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
