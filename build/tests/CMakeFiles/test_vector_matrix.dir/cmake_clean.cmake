file(REMOVE_RECURSE
  "CMakeFiles/test_vector_matrix.dir/test_vector_matrix.cpp.o"
  "CMakeFiles/test_vector_matrix.dir/test_vector_matrix.cpp.o.d"
  "test_vector_matrix"
  "test_vector_matrix.pdb"
  "test_vector_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
