# Empty dependencies file for test_vector_matrix.
# This may be replaced when dependencies are built.
