
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_vector_matrix.cpp" "tests/CMakeFiles/test_vector_matrix.dir/test_vector_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_vector_matrix.dir/test_vector_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shtrace_chz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
