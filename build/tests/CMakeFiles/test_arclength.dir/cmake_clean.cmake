file(REMOVE_RECURSE
  "CMakeFiles/test_arclength.dir/test_arclength.cpp.o"
  "CMakeFiles/test_arclength.dir/test_arclength.cpp.o.d"
  "test_arclength"
  "test_arclength.pdb"
  "test_arclength[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arclength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
