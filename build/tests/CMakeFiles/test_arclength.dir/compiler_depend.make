# Empty compiler generated dependencies file for test_arclength.
# This may be replaced when dependencies are built.
