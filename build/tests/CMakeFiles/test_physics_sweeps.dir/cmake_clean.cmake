file(REMOVE_RECURSE
  "CMakeFiles/test_physics_sweeps.dir/test_physics_sweeps.cpp.o"
  "CMakeFiles/test_physics_sweeps.dir/test_physics_sweeps.cpp.o.d"
  "test_physics_sweeps"
  "test_physics_sweeps.pdb"
  "test_physics_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physics_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
