# Empty dependencies file for test_physics_sweeps.
# This may be replaced when dependencies are built.
