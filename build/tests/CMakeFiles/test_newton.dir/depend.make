# Empty dependencies file for test_newton.
# This may be replaced when dependencies are built.
