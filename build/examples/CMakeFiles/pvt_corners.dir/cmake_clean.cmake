file(REMOVE_RECURSE
  "CMakeFiles/pvt_corners.dir/pvt_corners.cpp.o"
  "CMakeFiles/pvt_corners.dir/pvt_corners.cpp.o.d"
  "pvt_corners"
  "pvt_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvt_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
