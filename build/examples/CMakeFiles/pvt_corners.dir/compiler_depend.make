# Empty compiler generated dependencies file for pvt_corners.
# This may be replaced when dependencies are built.
