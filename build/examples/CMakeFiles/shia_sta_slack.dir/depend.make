# Empty dependencies file for shia_sta_slack.
# This may be replaced when dependencies are built.
