# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for shia_sta_slack.
