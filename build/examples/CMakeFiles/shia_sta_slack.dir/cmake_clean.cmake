file(REMOVE_RECURSE
  "CMakeFiles/shia_sta_slack.dir/shia_sta_slack.cpp.o"
  "CMakeFiles/shia_sta_slack.dir/shia_sta_slack.cpp.o.d"
  "shia_sta_slack"
  "shia_sta_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shia_sta_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
