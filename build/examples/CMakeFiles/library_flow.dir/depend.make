# Empty dependencies file for library_flow.
# This may be replaced when dependencies are built.
