file(REMOVE_RECURSE
  "CMakeFiles/library_flow.dir/library_flow.cpp.o"
  "CMakeFiles/library_flow.dir/library_flow.cpp.o.d"
  "library_flow"
  "library_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
