# Empty compiler generated dependencies file for analog_analyses.
# This may be replaced when dependencies are built.
