# Empty compiler generated dependencies file for trace_contour.
# This may be replaced when dependencies are built.
