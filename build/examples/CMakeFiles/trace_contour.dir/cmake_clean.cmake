file(REMOVE_RECURSE
  "CMakeFiles/trace_contour.dir/trace_contour.cpp.o"
  "CMakeFiles/trace_contour.dir/trace_contour.cpp.o.d"
  "trace_contour"
  "trace_contour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
