# Empty compiler generated dependencies file for shtrace_analysis.
# This may be replaced when dependencies are built.
