
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ac.cpp" "src/CMakeFiles/shtrace_analysis.dir/analysis/ac.cpp.o" "gcc" "src/CMakeFiles/shtrace_analysis.dir/analysis/ac.cpp.o.d"
  "/root/repo/src/analysis/adjoint.cpp" "src/CMakeFiles/shtrace_analysis.dir/analysis/adjoint.cpp.o" "gcc" "src/CMakeFiles/shtrace_analysis.dir/analysis/adjoint.cpp.o.d"
  "/root/repo/src/analysis/dc_op.cpp" "src/CMakeFiles/shtrace_analysis.dir/analysis/dc_op.cpp.o" "gcc" "src/CMakeFiles/shtrace_analysis.dir/analysis/dc_op.cpp.o.d"
  "/root/repo/src/analysis/newton.cpp" "src/CMakeFiles/shtrace_analysis.dir/analysis/newton.cpp.o" "gcc" "src/CMakeFiles/shtrace_analysis.dir/analysis/newton.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/CMakeFiles/shtrace_analysis.dir/analysis/sensitivity.cpp.o" "gcc" "src/CMakeFiles/shtrace_analysis.dir/analysis/sensitivity.cpp.o.d"
  "/root/repo/src/analysis/shooting.cpp" "src/CMakeFiles/shtrace_analysis.dir/analysis/shooting.cpp.o" "gcc" "src/CMakeFiles/shtrace_analysis.dir/analysis/shooting.cpp.o.d"
  "/root/repo/src/analysis/transient.cpp" "src/CMakeFiles/shtrace_analysis.dir/analysis/transient.cpp.o" "gcc" "src/CMakeFiles/shtrace_analysis.dir/analysis/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shtrace_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
