file(REMOVE_RECURSE
  "CMakeFiles/shtrace_analysis.dir/analysis/ac.cpp.o"
  "CMakeFiles/shtrace_analysis.dir/analysis/ac.cpp.o.d"
  "CMakeFiles/shtrace_analysis.dir/analysis/adjoint.cpp.o"
  "CMakeFiles/shtrace_analysis.dir/analysis/adjoint.cpp.o.d"
  "CMakeFiles/shtrace_analysis.dir/analysis/dc_op.cpp.o"
  "CMakeFiles/shtrace_analysis.dir/analysis/dc_op.cpp.o.d"
  "CMakeFiles/shtrace_analysis.dir/analysis/newton.cpp.o"
  "CMakeFiles/shtrace_analysis.dir/analysis/newton.cpp.o.d"
  "CMakeFiles/shtrace_analysis.dir/analysis/sensitivity.cpp.o"
  "CMakeFiles/shtrace_analysis.dir/analysis/sensitivity.cpp.o.d"
  "CMakeFiles/shtrace_analysis.dir/analysis/shooting.cpp.o"
  "CMakeFiles/shtrace_analysis.dir/analysis/shooting.cpp.o.d"
  "CMakeFiles/shtrace_analysis.dir/analysis/transient.cpp.o"
  "CMakeFiles/shtrace_analysis.dir/analysis/transient.cpp.o.d"
  "libshtrace_analysis.a"
  "libshtrace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
