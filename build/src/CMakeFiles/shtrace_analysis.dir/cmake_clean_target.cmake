file(REMOVE_RECURSE
  "libshtrace_analysis.a"
)
