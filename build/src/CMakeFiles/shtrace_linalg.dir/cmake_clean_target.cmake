file(REMOVE_RECURSE
  "libshtrace_linalg.a"
)
