file(REMOVE_RECURSE
  "CMakeFiles/shtrace_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/shtrace_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/shtrace_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/shtrace_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/shtrace_linalg.dir/linalg/pseudo_inverse.cpp.o"
  "CMakeFiles/shtrace_linalg.dir/linalg/pseudo_inverse.cpp.o.d"
  "libshtrace_linalg.a"
  "libshtrace_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
