# Empty dependencies file for shtrace_linalg.
# This may be replaced when dependencies are built.
