
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/shtrace_circuit.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/netlist_parser.cpp" "src/CMakeFiles/shtrace_circuit.dir/circuit/netlist_parser.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/circuit/netlist_parser.cpp.o.d"
  "/root/repo/src/devices/capacitor.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/capacitor.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/capacitor.cpp.o.d"
  "/root/repo/src/devices/diode.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/diode.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/diode.cpp.o.d"
  "/root/repo/src/devices/inductor.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/inductor.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/inductor.cpp.o.d"
  "/root/repo/src/devices/mosfet.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/mosfet.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/mosfet.cpp.o.d"
  "/root/repo/src/devices/resistor.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/resistor.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/resistor.cpp.o.d"
  "/root/repo/src/devices/sources.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/sources.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/sources.cpp.o.d"
  "/root/repo/src/devices/vccs.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/vccs.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/vccs.cpp.o.d"
  "/root/repo/src/devices/vcvs.cpp" "src/CMakeFiles/shtrace_circuit.dir/devices/vcvs.cpp.o" "gcc" "src/CMakeFiles/shtrace_circuit.dir/devices/vcvs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shtrace_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
