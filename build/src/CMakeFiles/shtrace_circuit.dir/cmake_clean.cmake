file(REMOVE_RECURSE
  "CMakeFiles/shtrace_circuit.dir/circuit/circuit.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/circuit/circuit.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/circuit/netlist_parser.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/circuit/netlist_parser.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/capacitor.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/capacitor.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/diode.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/diode.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/inductor.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/inductor.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/mosfet.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/mosfet.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/resistor.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/resistor.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/sources.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/sources.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/vccs.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/vccs.cpp.o.d"
  "CMakeFiles/shtrace_circuit.dir/devices/vcvs.cpp.o"
  "CMakeFiles/shtrace_circuit.dir/devices/vcvs.cpp.o.d"
  "libshtrace_circuit.a"
  "libshtrace_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
