# Empty dependencies file for shtrace_circuit.
# This may be replaced when dependencies are built.
