file(REMOVE_RECURSE
  "libshtrace_circuit.a"
)
