# Empty compiler generated dependencies file for shtrace_waveform.
# This may be replaced when dependencies are built.
