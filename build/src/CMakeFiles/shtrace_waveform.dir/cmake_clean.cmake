file(REMOVE_RECURSE
  "CMakeFiles/shtrace_waveform.dir/waveform/analog_sources.cpp.o"
  "CMakeFiles/shtrace_waveform.dir/waveform/analog_sources.cpp.o.d"
  "CMakeFiles/shtrace_waveform.dir/waveform/clock.cpp.o"
  "CMakeFiles/shtrace_waveform.dir/waveform/clock.cpp.o.d"
  "CMakeFiles/shtrace_waveform.dir/waveform/data_pulse.cpp.o"
  "CMakeFiles/shtrace_waveform.dir/waveform/data_pulse.cpp.o.d"
  "CMakeFiles/shtrace_waveform.dir/waveform/pulse.cpp.o"
  "CMakeFiles/shtrace_waveform.dir/waveform/pulse.cpp.o.d"
  "CMakeFiles/shtrace_waveform.dir/waveform/pwl.cpp.o"
  "CMakeFiles/shtrace_waveform.dir/waveform/pwl.cpp.o.d"
  "CMakeFiles/shtrace_waveform.dir/waveform/waveform.cpp.o"
  "CMakeFiles/shtrace_waveform.dir/waveform/waveform.cpp.o.d"
  "libshtrace_waveform.a"
  "libshtrace_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
