
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/waveform/analog_sources.cpp" "src/CMakeFiles/shtrace_waveform.dir/waveform/analog_sources.cpp.o" "gcc" "src/CMakeFiles/shtrace_waveform.dir/waveform/analog_sources.cpp.o.d"
  "/root/repo/src/waveform/clock.cpp" "src/CMakeFiles/shtrace_waveform.dir/waveform/clock.cpp.o" "gcc" "src/CMakeFiles/shtrace_waveform.dir/waveform/clock.cpp.o.d"
  "/root/repo/src/waveform/data_pulse.cpp" "src/CMakeFiles/shtrace_waveform.dir/waveform/data_pulse.cpp.o" "gcc" "src/CMakeFiles/shtrace_waveform.dir/waveform/data_pulse.cpp.o.d"
  "/root/repo/src/waveform/pulse.cpp" "src/CMakeFiles/shtrace_waveform.dir/waveform/pulse.cpp.o" "gcc" "src/CMakeFiles/shtrace_waveform.dir/waveform/pulse.cpp.o.d"
  "/root/repo/src/waveform/pwl.cpp" "src/CMakeFiles/shtrace_waveform.dir/waveform/pwl.cpp.o" "gcc" "src/CMakeFiles/shtrace_waveform.dir/waveform/pwl.cpp.o.d"
  "/root/repo/src/waveform/waveform.cpp" "src/CMakeFiles/shtrace_waveform.dir/waveform/waveform.cpp.o" "gcc" "src/CMakeFiles/shtrace_waveform.dir/waveform/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
