file(REMOVE_RECURSE
  "libshtrace_waveform.a"
)
