# Empty dependencies file for shtrace_chz.
# This may be replaced when dependencies are built.
