
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chz/characterize.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/characterize.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/characterize.cpp.o.d"
  "/root/repo/src/chz/family.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/family.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/family.cpp.o.d"
  "/root/repo/src/chz/h_function.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/h_function.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/h_function.cpp.o.d"
  "/root/repo/src/chz/independent.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/independent.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/independent.cpp.o.d"
  "/root/repo/src/chz/library.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/library.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/library.cpp.o.d"
  "/root/repo/src/chz/monte_carlo.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/monte_carlo.cpp.o.d"
  "/root/repo/src/chz/mpnr.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/mpnr.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/mpnr.cpp.o.d"
  "/root/repo/src/chz/problem.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/problem.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/problem.cpp.o.d"
  "/root/repo/src/chz/pvt.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/pvt.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/pvt.cpp.o.d"
  "/root/repo/src/chz/seed.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/seed.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/seed.cpp.o.d"
  "/root/repo/src/chz/shia_contour.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/shia_contour.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/shia_contour.cpp.o.d"
  "/root/repo/src/chz/surface_method.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/surface_method.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/surface_method.cpp.o.d"
  "/root/repo/src/chz/tracer.cpp" "src/CMakeFiles/shtrace_chz.dir/chz/tracer.cpp.o" "gcc" "src/CMakeFiles/shtrace_chz.dir/chz/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shtrace_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
