file(REMOVE_RECURSE
  "CMakeFiles/shtrace_chz.dir/chz/characterize.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/characterize.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/family.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/family.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/h_function.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/h_function.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/independent.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/independent.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/library.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/library.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/monte_carlo.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/monte_carlo.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/mpnr.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/mpnr.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/problem.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/problem.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/pvt.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/pvt.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/seed.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/seed.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/shia_contour.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/shia_contour.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/surface_method.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/surface_method.cpp.o.d"
  "CMakeFiles/shtrace_chz.dir/chz/tracer.cpp.o"
  "CMakeFiles/shtrace_chz.dir/chz/tracer.cpp.o.d"
  "libshtrace_chz.a"
  "libshtrace_chz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_chz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
