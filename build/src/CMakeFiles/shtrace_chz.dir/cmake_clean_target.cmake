file(REMOVE_RECURSE
  "libshtrace_chz.a"
)
