file(REMOVE_RECURSE
  "libshtrace_measure.a"
)
