# Empty dependencies file for shtrace_measure.
# This may be replaced when dependencies are built.
