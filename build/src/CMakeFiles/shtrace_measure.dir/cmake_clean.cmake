file(REMOVE_RECURSE
  "CMakeFiles/shtrace_measure.dir/measure/clock_to_q.cpp.o"
  "CMakeFiles/shtrace_measure.dir/measure/clock_to_q.cpp.o.d"
  "CMakeFiles/shtrace_measure.dir/measure/contour.cpp.o"
  "CMakeFiles/shtrace_measure.dir/measure/contour.cpp.o.d"
  "CMakeFiles/shtrace_measure.dir/measure/crossing.cpp.o"
  "CMakeFiles/shtrace_measure.dir/measure/crossing.cpp.o.d"
  "CMakeFiles/shtrace_measure.dir/measure/surface.cpp.o"
  "CMakeFiles/shtrace_measure.dir/measure/surface.cpp.o.d"
  "libshtrace_measure.a"
  "libshtrace_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
