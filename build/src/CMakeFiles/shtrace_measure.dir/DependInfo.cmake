
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/clock_to_q.cpp" "src/CMakeFiles/shtrace_measure.dir/measure/clock_to_q.cpp.o" "gcc" "src/CMakeFiles/shtrace_measure.dir/measure/clock_to_q.cpp.o.d"
  "/root/repo/src/measure/contour.cpp" "src/CMakeFiles/shtrace_measure.dir/measure/contour.cpp.o" "gcc" "src/CMakeFiles/shtrace_measure.dir/measure/contour.cpp.o.d"
  "/root/repo/src/measure/crossing.cpp" "src/CMakeFiles/shtrace_measure.dir/measure/crossing.cpp.o" "gcc" "src/CMakeFiles/shtrace_measure.dir/measure/crossing.cpp.o.d"
  "/root/repo/src/measure/surface.cpp" "src/CMakeFiles/shtrace_measure.dir/measure/surface.cpp.o" "gcc" "src/CMakeFiles/shtrace_measure.dir/measure/surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shtrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
