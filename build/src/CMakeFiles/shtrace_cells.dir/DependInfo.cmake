
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/c2mos.cpp" "src/CMakeFiles/shtrace_cells.dir/cells/c2mos.cpp.o" "gcc" "src/CMakeFiles/shtrace_cells.dir/cells/c2mos.cpp.o.d"
  "/root/repo/src/cells/inverter.cpp" "src/CMakeFiles/shtrace_cells.dir/cells/inverter.cpp.o" "gcc" "src/CMakeFiles/shtrace_cells.dir/cells/inverter.cpp.o.d"
  "/root/repo/src/cells/latch.cpp" "src/CMakeFiles/shtrace_cells.dir/cells/latch.cpp.o" "gcc" "src/CMakeFiles/shtrace_cells.dir/cells/latch.cpp.o.d"
  "/root/repo/src/cells/mos_library.cpp" "src/CMakeFiles/shtrace_cells.dir/cells/mos_library.cpp.o" "gcc" "src/CMakeFiles/shtrace_cells.dir/cells/mos_library.cpp.o.d"
  "/root/repo/src/cells/tg_dff.cpp" "src/CMakeFiles/shtrace_cells.dir/cells/tg_dff.cpp.o" "gcc" "src/CMakeFiles/shtrace_cells.dir/cells/tg_dff.cpp.o.d"
  "/root/repo/src/cells/tspc.cpp" "src/CMakeFiles/shtrace_cells.dir/cells/tspc.cpp.o" "gcc" "src/CMakeFiles/shtrace_cells.dir/cells/tspc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shtrace_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
