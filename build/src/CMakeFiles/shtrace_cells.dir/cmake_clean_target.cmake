file(REMOVE_RECURSE
  "libshtrace_cells.a"
)
