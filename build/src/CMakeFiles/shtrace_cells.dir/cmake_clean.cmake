file(REMOVE_RECURSE
  "CMakeFiles/shtrace_cells.dir/cells/c2mos.cpp.o"
  "CMakeFiles/shtrace_cells.dir/cells/c2mos.cpp.o.d"
  "CMakeFiles/shtrace_cells.dir/cells/inverter.cpp.o"
  "CMakeFiles/shtrace_cells.dir/cells/inverter.cpp.o.d"
  "CMakeFiles/shtrace_cells.dir/cells/latch.cpp.o"
  "CMakeFiles/shtrace_cells.dir/cells/latch.cpp.o.d"
  "CMakeFiles/shtrace_cells.dir/cells/mos_library.cpp.o"
  "CMakeFiles/shtrace_cells.dir/cells/mos_library.cpp.o.d"
  "CMakeFiles/shtrace_cells.dir/cells/tg_dff.cpp.o"
  "CMakeFiles/shtrace_cells.dir/cells/tg_dff.cpp.o.d"
  "CMakeFiles/shtrace_cells.dir/cells/tspc.cpp.o"
  "CMakeFiles/shtrace_cells.dir/cells/tspc.cpp.o.d"
  "libshtrace_cells.a"
  "libshtrace_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
