# Empty compiler generated dependencies file for shtrace_cells.
# This may be replaced when dependencies are built.
