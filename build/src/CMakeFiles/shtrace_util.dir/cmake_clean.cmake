file(REMOVE_RECURSE
  "CMakeFiles/shtrace_util.dir/util/stats.cpp.o"
  "CMakeFiles/shtrace_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/shtrace_util.dir/util/table.cpp.o"
  "CMakeFiles/shtrace_util.dir/util/table.cpp.o.d"
  "CMakeFiles/shtrace_util.dir/util/units.cpp.o"
  "CMakeFiles/shtrace_util.dir/util/units.cpp.o.d"
  "libshtrace_util.a"
  "libshtrace_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shtrace_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
