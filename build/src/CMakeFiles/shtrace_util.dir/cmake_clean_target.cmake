file(REMOVE_RECURSE
  "libshtrace_util.a"
)
