# Empty dependencies file for shtrace_util.
# This may be replaced when dependencies are built.
