# Empty compiler generated dependencies file for bench_fig8_tspc_contour.
# This may be replaced when dependencies are built.
