file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tspc_contour.dir/bench_fig8_tspc_contour.cpp.o"
  "CMakeFiles/bench_fig8_tspc_contour.dir/bench_fig8_tspc_contour.cpp.o.d"
  "bench_fig8_tspc_contour"
  "bench_fig8_tspc_contour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tspc_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
