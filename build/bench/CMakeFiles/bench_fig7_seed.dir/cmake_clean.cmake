file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_seed.dir/bench_fig7_seed.cpp.o"
  "CMakeFiles/bench_fig7_seed.dir/bench_fig7_seed.cpp.o.d"
  "bench_fig7_seed"
  "bench_fig7_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
