# Empty compiler generated dependencies file for bench_fig7_seed.
# This may be replaced when dependencies are built.
