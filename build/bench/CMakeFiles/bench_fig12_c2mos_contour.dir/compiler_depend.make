# Empty compiler generated dependencies file for bench_fig12_c2mos_contour.
# This may be replaced when dependencies are built.
