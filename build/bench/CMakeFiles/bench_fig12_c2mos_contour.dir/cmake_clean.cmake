file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_c2mos_contour.dir/bench_fig12_c2mos_contour.cpp.o"
  "CMakeFiles/bench_fig12_c2mos_contour.dir/bench_fig12_c2mos_contour.cpp.o.d"
  "bench_fig12_c2mos_contour"
  "bench_fig12_c2mos_contour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_c2mos_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
