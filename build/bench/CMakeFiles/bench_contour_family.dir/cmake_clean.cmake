file(REMOVE_RECURSE
  "CMakeFiles/bench_contour_family.dir/bench_contour_family.cpp.o"
  "CMakeFiles/bench_contour_family.dir/bench_contour_family.cpp.o.d"
  "bench_contour_family"
  "bench_contour_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contour_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
