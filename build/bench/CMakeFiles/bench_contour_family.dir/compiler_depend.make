# Empty compiler generated dependencies file for bench_contour_family.
# This may be replaced when dependencies are built.
