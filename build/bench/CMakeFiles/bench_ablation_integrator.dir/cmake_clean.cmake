file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_integrator.dir/bench_ablation_integrator.cpp.o"
  "CMakeFiles/bench_ablation_integrator.dir/bench_ablation_integrator.cpp.o.d"
  "bench_ablation_integrator"
  "bench_ablation_integrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
