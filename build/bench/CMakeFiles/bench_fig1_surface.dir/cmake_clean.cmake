file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_surface.dir/bench_fig1_surface.cpp.o"
  "CMakeFiles/bench_fig1_surface.dir/bench_fig1_surface.cpp.o.d"
  "bench_fig1_surface"
  "bench_fig1_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
