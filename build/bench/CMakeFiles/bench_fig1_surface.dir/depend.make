# Empty dependencies file for bench_fig1_surface.
# This may be replaced when dependencies are built.
