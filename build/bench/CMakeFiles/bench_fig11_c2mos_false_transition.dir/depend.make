# Empty dependencies file for bench_fig11_c2mos_false_transition.
# This may be replaced when dependencies are built.
