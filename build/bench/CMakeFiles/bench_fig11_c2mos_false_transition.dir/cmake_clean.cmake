file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_c2mos_false_transition.dir/bench_fig11_c2mos_false_transition.cpp.o"
  "CMakeFiles/bench_fig11_c2mos_false_transition.dir/bench_fig11_c2mos_false_transition.cpp.o.d"
  "bench_fig11_c2mos_false_transition"
  "bench_fig11_c2mos_false_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_c2mos_false_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
