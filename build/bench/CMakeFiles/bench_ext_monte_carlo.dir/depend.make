# Empty dependencies file for bench_ext_monte_carlo.
# This may be replaced when dependencies are built.
