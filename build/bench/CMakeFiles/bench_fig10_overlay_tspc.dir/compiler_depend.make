# Empty compiler generated dependencies file for bench_fig10_overlay_tspc.
# This may be replaced when dependencies are built.
