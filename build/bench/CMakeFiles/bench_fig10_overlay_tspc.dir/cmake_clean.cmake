file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_overlay_tspc.dir/bench_fig10_overlay_tspc.cpp.o"
  "CMakeFiles/bench_fig10_overlay_tspc.dir/bench_fig10_overlay_tspc.cpp.o.d"
  "bench_fig10_overlay_tspc"
  "bench_fig10_overlay_tspc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_overlay_tspc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
