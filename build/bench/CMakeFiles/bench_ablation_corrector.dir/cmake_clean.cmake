file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_corrector.dir/bench_ablation_corrector.cpp.o"
  "CMakeFiles/bench_ablation_corrector.dir/bench_ablation_corrector.cpp.o.d"
  "bench_ablation_corrector"
  "bench_ablation_corrector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_corrector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
