# Empty compiler generated dependencies file for bench_ablation_corrector.
# This may be replaced when dependencies are built.
