// FIG11 -- reproduces paper Fig. 11(b): because clk-bar is delayed after
// clk, the C2MOS register exhibits FALSE transitions -- for some hold
// skews the output crosses 80% of its final transition and then reverts to
// the wrong logic value. This is why Section IV-B moves the criterion to
// 90% of the transition.
//
// The bench sweeps hold skews at a generous setup skew, reporting how far
// the output travelled (as a fraction of the full transition) and where it
// ended, and flags the false-transition rows.
#include "bench_common.hpp"

#include "shtrace/analysis/transient.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("FIG11", "C2MOS false transitions from clk/clk-bar overlap");

    // Pronounced overlap (0.5 ns) and light load make the race decisive,
    // mirroring the paper's observation.
    C2mosOptions cellOpt;
    cellOpt.clkBarDelay = 0.5e-9;
    cellOpt.outputLoadCapacitance = 8e-15;
    const RegisterFixture reg = buildC2mosRegister(cellOpt);
    const Vector sel = reg.circuit.selectorFor(reg.q);
    const double swing = reg.qFinal - reg.qInitial;  // negative: falls

    TablePrinter table({"hold skew", "max travel", "final Q (V)",
                        "classification"});
    CsvWriter csv("fig11_false_transitions.csv");
    csv.writeHeader({"hold_skew_s", "max_travel_fraction", "q_end_volts"});

    int falseTransitions = 0;
    for (double th = 100e-12; th <= 550e-12; th += 25e-12) {
        reg.data->setSkews(2e-9, th);
        TransientOptions opt;
        opt.tStop = reg.activeEdgeMidpoint() + 3e-9;
        opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);
        const TransientResult tr =
            TransientAnalysis(reg.circuit, opt).run();
        if (!tr.success) {
            std::cerr << "transient failed\n";
            return 1;
        }
        double maxTravel = 0.0;
        for (std::size_t i = 0; i < tr.times.size(); ++i) {
            if (tr.times[i] <= reg.activeEdgeMidpoint()) {
                continue;
            }
            const double travel =
                (sel.dot(tr.states[i]) - reg.qInitial) / swing;
            maxTravel = std::max(maxTravel, travel);
        }
        const double qEnd = sel.dot(tr.finalState);
        const bool completed =
            std::fabs(qEnd - reg.qFinal) < 0.25 * std::fabs(swing);
        const bool falseTransition = !completed && maxTravel >= 0.8;
        falseTransitions += falseTransition ? 1 : 0;
        table.addRowValues(
            ps(th), message(static_cast<int>(maxTravel * 100.0 + 0.5), "%"),
            qEnd,
            falseTransition
                ? "FALSE TRANSITION (>80% then reverts)"
                : (completed ? "latched" : "failed (never reached 80%)"));
        csv.writeRow({th, maxTravel, qEnd});
    }
    table.print(std::cout);
    std::cout << "\nfalse transitions found: " << falseTransitions
              << " (paper: this phenomenon forces the 90% criterion)\n";
    std::cout << "CSV written: fig11_false_transitions.csv\n";
    return falseTransitions > 0 ? 0 : 1;
}
