// CACHE -- cost of recharacterization with the persistent store
// (docs/STORE.md). Three scenarios on the TSPC register, one row each:
//
//   cold        empty store: full seed bisection + trace, entry published
//   hit         identical rerun: served from the store, ZERO transients
//   warm        perturbed clock-to-Q target (+5% degradation): full key
//               misses, problem key matches, the tracer is seeded from the
//               cached contour instead of bisecting
//   cold_perturbed  the same perturbed run with caching off -- the
//               baseline the warm start is measured against
//
// The exit status asserts the two claims the store makes: a hit does zero
// transient integrations, and a warm start costs measurably fewer
// transients than the cold perturbed run.
#include "bench_common.hpp"

#include <filesystem>

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("CACHE", "persistent store: cold vs hit vs warm start");

    const std::filesystem::path storeDir =
        std::filesystem::temp_directory_path() / "shtrace_bench_cache";
    std::filesystem::remove_all(storeDir);

    const RegisterFixture reg = buildTspcRegister();
    TracerOptions tracer;
    tracer.bounds = tspcWindow();
    // High enough that every trace covers the whole window and stops at
    // its bounds: cold and warm then trace the same arc, and the saved
    // seed bisection is the measured difference.
    tracer.maxPoints = 40;
    const CharacterizeOptions cached =
        CharacterizeOptions::defaults().withTracer(tracer).withCacheDir(
            storeDir.string());

    CharacterizeOptions perturbed = cached;
    perturbed.criterion.degradation += 0.05;
    CharacterizeOptions perturbedNoCache = perturbed;
    perturbedNoCache.cacheDir.clear();

    struct Row {
        const char* mode;
        CharacterizeResult result;
    };
    const Row rows[] = {
        {"cold", characterizeInterdependent(reg, cached)},
        {"hit", characterizeInterdependent(reg, cached)},
        {"warm", characterizeInterdependent(reg, perturbed)},
        {"cold_perturbed",
         characterizeInterdependent(reg, perturbedNoCache)},
    };

    TablePrinter table({"mode", "transients", "h evals", "seed evals",
                        "contour pts", "wall (s)"});
    CsvWriter csv("cache_speedup.csv");
    csv.writeHeader({"mode", "transients", "h_evals", "seed_evals",
                     "contour_points", "wall_s"});
    for (std::size_t i = 0; i < 4; ++i) {
        const CharacterizeResult& r = rows[i].result;
        if (!r.success) {
            std::cerr << rows[i].mode << " run failed\n";
            return 1;
        }
        table.addRowValues(
            rows[i].mode,
            static_cast<unsigned long long>(r.stats.transientSolves),
            static_cast<unsigned long long>(r.stats.hEvaluations),
            r.seed.evaluations, static_cast<int>(r.contour.points.size()),
            r.stats.wallSeconds);
        csv.writeRow({static_cast<double>(i),
                      static_cast<double>(r.stats.transientSolves),
                      static_cast<double>(r.stats.hEvaluations),
                      static_cast<double>(r.seed.evaluations),
                      static_cast<double>(r.contour.points.size()),
                      r.stats.wallSeconds});
    }
    table.print(std::cout);

    const SimStats& hit = rows[1].result.stats;
    const SimStats& warm = rows[2].result.stats;
    const SimStats& coldP = rows[3].result.stats;
    const double warmRatio =
        static_cast<double>(coldP.transientSolves) /
        static_cast<double>(warm.transientSolves);
    std::cout << "\nhit: " << hit.transientSolves
              << " transients (claim: 0); warm start: "
              << warm.transientSolves << " vs cold "
              << coldP.transientSolves << " transients ("
              << warmRatio << "x fewer)\n"
              << "CSV written: cache_speedup.csv (mode ids: 0=cold 1=hit "
                 "2=warm 3=cold_perturbed)\n";

    std::filesystem::remove_all(storeDir);
    const bool hitIsFree = hit.transientSolves == 0 && hit.cacheHits == 1;
    const bool warmIsCheaper =
        warm.cacheWarmStarts == 1 &&
        warm.transientSolves < coldP.transientSolves;
    return (hitIsFree && warmIsCheaper) ? 0 : 1;
}
