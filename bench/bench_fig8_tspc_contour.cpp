// FIG8 -- reproduces paper Fig. 8: the constant clock-to-Q delay contour of
// the TSPC register (10% degradation), traced by Euler-Newton with 40
// points. Also reports the Section IV-A scalar criterion quantities
// (t_c, characteristic clock-to-Q, t_f, r) next to the paper's values.
//
// Paper reference values (their 2.5 V process): t_c = 11.348 ns,
// characteristic clock-to-Q = 298 ps, t_f = 11.3778 ns, r = 1.25 V; contour
// spans setup ~150-350 ps, hold ~100-200 ps. Our process differs, so match
// the SHAPE and regimes, not the exact picoseconds.
//
// Usage: bench_fig8_tspc_contour [--obs <dir>]
//   --obs <dir> additionally writes <dir>/fig8_metrics.json (+ .prom
//   Prometheus exposition), <dir>/fig8_trace.json (+ .folded collapsed
//   stacks), and a store-v4 entry under <dir>/store whose timeline
//   `shtrace-store show --timeline` decodes.
#include "bench_common.hpp"

#include <chrono>

#include "shtrace/util/table.hpp"

int main(int argc, char** argv) {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("FIG8", "TSPC constant clock-to-Q contour via Euler-Newton");

    std::string obsDir;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--obs") {
            obsDir = argv[i + 1];
        }
    }

    ObsBenchScope obsScope;

    const RegisterFixture reg = buildTspcRegister();
    CharacterizeOptions opt;
    opt.criterion = tspcCriterion();
    opt.tracer.maxPoints = 40;
    opt.tracer.bounds = tspcWindow();
    opt.tracer.stepLength = 8e-12;
    opt.tracer.maxStepLength = 30e-12;
    if (!obsDir.empty()) {
        std::filesystem::create_directories(obsDir);
        opt.withMetrics(obsDir + "/fig8_metrics.json")
            .withSpanTrace(obsDir + "/fig8_trace.json")
            .withCacheDir(obsDir + "/store");
    }

    const auto wallStart = std::chrono::steady_clock::now();
    const CharacterizeResult result = characterizeInterdependent(reg, opt);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wallStart)
                            .count();
    if (!result.success) {
        std::cerr << "characterization failed\n";
        return 1;
    }
    std::cout << "paper:  t_c = 11.348ns, char. C2Q = 298ps, t_f = 11.3778ns,"
                 " r = 1.25 V\n";
    std::cout << "ours:   t_c = " << ps(11.05e-9 + result.characteristicClockToQ)
              << ", char. C2Q = " << ps(result.characteristicClockToQ)
              << ", t_f = " << ps(result.tf) << ", r = " << result.r
              << " V\n\n";

    TablePrinter table({"#", "setup skew", "hold skew", "|h| (V)",
                        "MPNR iters"});
    CsvWriter csv("fig8_tspc_contour.csv");
    csv.writeHeader({"setup_skew_s", "hold_skew_s", "abs_h"});
    for (std::size_t i = 0; i < result.contour.points.size(); ++i) {
        const SkewPoint& p = result.contour.points[i];
        table.addRowValues(static_cast<int>(i), ps(p.setup), ps(p.hold),
                           result.contour.residuals[i],
                           result.contour.correctorIterations[i]);
        csv.writeRow({p.setup, p.hold, result.contour.residuals[i]});
    }
    table.print(std::cout);
    std::cout << "\npoints: " << result.contour.points.size()
              << ", avg corrector iterations: "
              << result.contour.averageCorrectorIterations()
              << " (paper: 2-3 typical)\n";
    std::cout << "cost: " << result.stats << "\n";
    std::cout << "CSV written: fig8_tspc_contour.csv\n";
    // In --obs mode the driver's RunObservation already published the
    // run's counters; don't publish them a second time.
    writeObsBenchReport("fig8_tspc_contour", result.stats, wall,
                        "contour_points", result.contour.points.size(),
                        /*publishCounters=*/obsDir.empty());
    if (!obsDir.empty()) {
        std::cout << "obs files written under " << obsDir << "/\n";
    }
    return 0;
}
