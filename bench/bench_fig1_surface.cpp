// FIG1 -- reproduces paper Fig. 1(a)/(b): the Q output surface over the
// (setup skew, hold skew) plane at t_f and the 10%-degraded constant
// clock-to-Q contour extracted from it. This is the prevailing brute-force
// flow the paper competes with (and our baseline elsewhere).
//
// Writes the full surface to fig1_surface.csv and the extracted contour to
// fig1_contour.csv; prints a coarse ASCII rendition of the surface and the
// contour extent.
#include "bench_common.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("FIG1", "Q output surface and 10%-degraded contour (TSPC)");

    const RegisterFixture reg = buildTspcRegister();
    SimStats stats;
    const CharacterizationProblem problem(reg, tspcCriterion(), {}, &stats);
    printCriterion(problem);

    const auto surfOpt = surfaceOptionsFor(tspcWindow(), 25);
    const SurfaceMethodResult result =
        runSurfaceMethod(problem.h(), surfOpt, &stats);
    result.surface.writeCsv("fig1_surface.csv");

    // ASCII rendition: '#' = output above r (failed latch of the falling
    // datum), '.' = below r (passed). The boundary is the contour.
    std::cout << "\nsurface (rows: hold skew top->bottom high->low; cols: "
                 "setup skew left->right low->high)\n";
    for (std::size_t j = result.surface.holdCount(); j-- > 0;) {
        std::cout << "  ";
        for (std::size_t i = 0; i < result.surface.setupCount(); ++i) {
            std::cout << (result.surface.value(i, j) >= problem.r() ? '#'
                                                                    : '.');
        }
        std::cout << "\n";
    }

    CsvWriter contourCsv("fig1_contour.csv");
    contourCsv.writeHeader({"setup_skew_s", "hold_skew_s"});
    std::size_t points = 0;
    for (const auto& poly : result.contours) {
        for (const SkewPoint& p : poly) {
            contourCsv.writeRow({p.setup, p.hold});
            ++points;
        }
    }
    std::cout << "\ncontour polylines: " << result.contours.size()
              << ", total points: " << points << "\n";
    if (!result.contours.empty()) {
        const auto& main = result.contours.front();
        std::cout << "main contour from (" << ps(main.front().setup) << ", "
                  << ps(main.front().hold) << ") to ("
                  << ps(main.back().setup) << ", " << ps(main.back().hold)
                  << ")\n";
    }
    std::cout << "transients: " << result.transientCount
              << " (the cost the curve tracer avoids)\n";
    std::cout << "cost: " << stats << "\n";
    std::cout << "CSV written: fig1_surface.csv, fig1_contour.csv\n";
    return result.contours.empty() ? 1 : 0;
}
