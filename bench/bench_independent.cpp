// INDEP -- Section IIIB / ref [6]: independent setup/hold characterization.
// Scalar Newton on h (with the analytic sensitivity) vs the industry
// binary-search baseline, at matched accuracy, on both validation
// registers. Ref [6] reports 4-10x; the cold-start Newton (which pays a
// coarse scan to bracket the root) and the warm-start Newton (seeded from
// a neighbouring corner, the library-characterization reality) bracket
// that range.
#include "bench_common.hpp"

#include "shtrace/chz/independent.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("INDEP", "independent setup/hold: Newton vs binary search");

    TablePrinter table({"register", "axis", "method", "skew",
                        "transients", "speedup"});
    CsvWriter csv("independent.csv");
    csv.writeHeader({"register", "axis", "method", "skew_s", "transients"});

    struct Cell {
        const char* name;
        double id;
        RegisterFixture fixture;
        CriterionOptions criterion;
    };
    Cell cells[] = {
        {"TSPC", 0.0, buildTspcRegister(), tspcCriterion()},
        {"C2MOS", 1.0, buildC2mosRegister(), c2mosCriterion()},
    };

    bool allInBand = true;
    for (Cell& cell : cells) {
        const CharacterizationProblem problem(cell.fixture, cell.criterion);
        for (const SkewAxis axis : {SkewAxis::Setup, SkewAxis::Hold}) {
            const char* axisName = axis == SkewAxis::Setup ? "setup" : "hold";

            // Matched-accuracy bisection: Newton converges |h| <= 2e-5 V,
            // i.e. ~0.01 ps given gradients ~1e9-1e10 V/s.
            IndependentOptions bisectOpt;
            bisectOpt.tolerance = 0.01e-12;
            const IndependentResult bisect = characterizeByBisection(
                problem.h(), axis, problem.passSign(), bisectOpt);

            const IndependentResult cold = characterizeByNewton(
                problem.h(), axis, problem.passSign());

            IndependentOptions warmOpt;
            warmOpt.newtonSeed = cold.skew * 1.05;  // neighbouring corner
            const IndependentResult warm = characterizeByNewton(
                problem.h(), axis, problem.passSign(), warmOpt);

            if (!bisect.converged || !cold.converged || !warm.converged) {
                std::cerr << cell.name << "/" << axisName
                          << ": a method failed to converge\n";
                return 1;
            }
            const double coldSpeedup =
                static_cast<double>(bisect.transientCount) /
                cold.transientCount;
            const double warmSpeedup =
                static_cast<double>(bisect.transientCount) /
                warm.transientCount;
            table.addRowValues(cell.name, axisName, "bisection",
                               ps(bisect.skew), bisect.transientCount, 1.0);
            table.addRowValues(cell.name, axisName, "newton (cold)",
                               ps(cold.skew), cold.transientCount,
                               coldSpeedup);
            table.addRowValues(cell.name, axisName, "newton (warm)",
                               ps(warm.skew), warm.transientCount,
                               warmSpeedup);
            csv.writeRow({cell.id, axis == SkewAxis::Setup ? 0.0 : 1.0, 0.0,
                          bisect.skew,
                          static_cast<double>(bisect.transientCount)});
            csv.writeRow({cell.id, axis == SkewAxis::Setup ? 0.0 : 1.0, 1.0,
                          cold.skew,
                          static_cast<double>(cold.transientCount)});
            csv.writeRow({cell.id, axis == SkewAxis::Setup ? 0.0 : 1.0, 2.0,
                          warm.skew,
                          static_cast<double>(warm.transientCount)});
            if (warmSpeedup < 3.0) {
                allInBand = false;
            }
        }
    }
    table.print(std::cout);
    std::cout << "\npaper (ref [6]): 4-10x over binary search\n";
    std::cout << "CSV written: independent.csv\n";
    return allInBand ? 0 : 1;
}
