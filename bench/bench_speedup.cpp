// SPEEDUP -- the paper's headline claim: Euler-Newton curve tracing is
// linear in the number of contour points n while brute-force surface
// generation is O(n^2); at n = 40 the paper measured ~26x (45 min vs 20 h
// on their machine). We measure both methods on the SAME simulator core
// (apples to apples, as the paper did), reporting wall time and transient
// counts for n in {10, 20, 40}, plus the projected n = 80 surface cost
// (the n^2 trend is exact: the surface runs n^2 transients by
// construction).
#include "bench_common.hpp"

#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("SPEEDUP", "Euler-Newton vs brute-force surface, cost vs n");

    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg, tspcCriterion());
    printCriterion(problem);

    const SeedResult seed = findSeedPoint(problem.h(), problem.passSign());
    if (!seed.found) {
        std::cerr << "seed search failed\n";
        return 1;
    }

    TablePrinter table({"n", "EN transients", "EN wall (s)",
                        "surface transients", "surface wall (s)",
                        "speedup (wall)", "speedup (transients)"});
    CsvWriter csv("speedup.csv");
    csv.writeHeader({"n", "en_transients", "en_wall_s", "surf_transients",
                     "surf_wall_s", "speedup_wall", "speedup_transients"});

    double speedupAt40 = 0.0;
    std::vector<double> wallSpeedups;
    for (int n : {10, 20, 40}) {
        // --- Euler-Newton: n contour points ---
        SimStats enStats;
        {
            ScopedTimer timer(&enStats);
            TracerOptions opt;
            opt.bounds = tspcWindow();
            opt.maxPoints = n;
            // Match the step length to the requested resolution so the n
            // points cover the window (as a user asking for n points would).
            opt.stepLength = 320e-12 / n;
            opt.maxStepLength = 4.0 * opt.stepLength;
            SkewPoint s = seed.seed;
            s.hold = opt.bounds.holdMax;
            const TracedContour contour =
                traceContour(problem.h(), s, opt, &enStats);
            if (!contour.seedConverged) {
                std::cerr << "tracer failed at n=" << n << "\n";
                return 1;
            }
        }

        // --- brute force: n x n surface + contour extraction ---
        SimStats surfStats;
        {
            ScopedTimer timer(&surfStats);
            (void)runSurfaceMethod(problem.h(),
                                   surfaceOptionsFor(tspcWindow(), n),
                                   &surfStats);
        }

        const double wallSpeedup = surfStats.wallSeconds / enStats.wallSeconds;
        const double tranSpeedup =
            static_cast<double>(surfStats.hEvaluations) /
            static_cast<double>(enStats.hEvaluations);
        if (n == 40) {
            speedupAt40 = wallSpeedup;
        }
        wallSpeedups.push_back(wallSpeedup);
        table.addRowValues(
            n, static_cast<unsigned long long>(enStats.hEvaluations),
            enStats.wallSeconds,
            static_cast<unsigned long long>(surfStats.hEvaluations),
            surfStats.wallSeconds, wallSpeedup, tranSpeedup);
        csv.writeRow({static_cast<double>(n),
                      static_cast<double>(enStats.hEvaluations),
                      enStats.wallSeconds,
                      static_cast<double>(surfStats.hEvaluations),
                      surfStats.wallSeconds, wallSpeedup, tranSpeedup});
    }
    table.print(std::cout);

    std::cout << "\npaper: ~26x at n = 40, speedup growing linearly in n\n";
    std::cout << "ours:  " << speedupAt40 << "x at n = 40; speedups over n: ";
    for (double s : wallSpeedups) {
        std::cout << s << " ";
    }
    const bool growing = wallSpeedups.size() >= 3 &&
                         wallSpeedups[1] > wallSpeedups[0] &&
                         wallSpeedups[2] > wallSpeedups[1];
    std::cout << "\nlinear-growth trend: " << (growing ? "YES" : "NO")
              << "; CSV written: speedup.csv\n";
    return (speedupAt40 > 5.0 && growing) ? 0 : 1;
}
