// FIG3 -- reproduces paper Fig. 3(a)/(b): the family of Q output waveforms
// as the hold skew decreases at fixed setup skew (clock-to-Q degrades and
// eventually the latch fails), and the t_c / t_f / r geometry on the
// characteristic and degraded waveforms.
#include "bench_common.hpp"

#include "shtrace/analysis/transient.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("FIG3", "Q waveforms vs decreasing hold skew (TSPC)");

    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg, tspcCriterion());
    printCriterion(problem);

    const double tauS1 = 260e-12;  // fixed setup skew (near the knee)
    const double holds[] = {400e-12, 250e-12, 190e-12, 170e-12, 160e-12,
                            150e-12, 120e-12};

    TablePrinter table({"hold skew", "clock-to-Q", "degradation",
                        "latched"});
    CsvWriter csv("fig3_waveforms.csv");
    csv.writeHeader({"hold_skew_s", "time_s", "q_volts"});

    const Vector sel = reg.circuit.selectorFor(reg.q);
    for (double th : holds) {
        const TransientResult tr = problem.h().simulate(tauS1, th);
        if (!tr.success) {
            std::cerr << "transient failed at th=" << th << "\n";
            return 1;
        }
        for (std::size_t i = 0; i < tr.times.size(); i += 4) {
            csv.writeRow({th, tr.times[i], sel.dot(tr.states[i])});
        }
        const auto c2q = problem.measureClockToQAt(tauS1, th);
        if (c2q.has_value()) {
            const double degr =
                (*c2q - problem.characteristicClockToQ()) /
                problem.characteristicClockToQ();
            table.addRowValues(ps(th), ps(*c2q),
                               message(static_cast<int>(degr * 100.0 + 0.5),
                                       "%"),
                               "yes");
        } else {
            table.addRowValues(ps(th), "-", "-", "NO (failed)");
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper Fig. 3): clock-to-Q grows as the "
                 "hold skew shrinks,\npassing through the +10% point (the "
                 "contour) before the latch fails outright.\n";
    std::cout << "CSV written: fig3_waveforms.csv\n";
    return 0;
}
