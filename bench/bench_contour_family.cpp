// EXT1 -- contour family (extension): constant clock-to-Q contours of the
// TSPC register at 5%, 10% and 20% degradation. The paper fixes 10% "for
// example"; STA flows benefit from the whole family. The nested structure
// (larger allowed degradation -> contour at smaller skews) is the
// quantitative check.
#include "bench_common.hpp"

#include "shtrace/chz/family.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("EXT1", "contour family at 5% / 10% / 20% degradation");

    const RegisterFixture reg = buildTspcRegister();
    ContourFamilyOptions opt;
    opt.degradations = {0.05, 0.10, 0.20};
    opt.tracer.maxPoints = 16;
    opt.tracer.bounds = tspcWindow();

    const ContourFamilyResult fam = characterizeContourFamily(reg, opt);
    if (!fam.allSucceeded()) {
        std::cerr << "family characterization failed\n";
        return 1;
    }
    std::cout << "characteristic clock-to-Q = "
              << ps(fam.characteristicClockToQ) << "\n\n";

    TablePrinter table({"degradation", "t_f", "points", "setup asymptote",
                        "hold asymptote", "seed evals", "transients",
                        "wall [ms]"});
    CsvWriter csv("contour_family.csv");
    csv.writeHeader({"degradation", "setup_skew_s", "hold_skew_s"});
    // Per-member cost attribution, so Pareto plots never have to re-derive
    // a member's share from the merged totals.
    CsvWriter cost("contour_family_cost.csv");
    cost.writeHeader({"degradation", "points", "transients", "wall_seconds"});
    for (const auto& m : fam.members) {
        for (const SkewPoint& p : m.contour.points) {
            csv.writeRow({m.degradation, p.setup, p.hold});
        }
        cost.writeRow({m.degradation,
                       static_cast<double>(m.contour.points.size()),
                       static_cast<double>(m.stats.transientSolves),
                       m.stats.wallSeconds});
        table.addRowValues(message(m.degradation * 100.0, "%"), ps(m.tf),
                           static_cast<int>(m.contour.points.size()),
                           ps(m.contour.points.front().setup),
                           ps(m.contour.points.back().hold),
                           m.seed.evaluations,
                           static_cast<int>(m.stats.transientSolves),
                           m.stats.wallSeconds * 1e3);
    }
    table.print(std::cout);

    const bool nested =
        fam.members[0].contour.points.front().setup >
            fam.members[1].contour.points.front().setup &&
        fam.members[1].contour.points.front().setup >
            fam.members[2].contour.points.front().setup;
    std::cout << "\nnesting check (5% outermost -> 20% innermost): "
              << (nested ? "PASS" : "FAIL") << "\n";
    std::cout << "total cost: " << fam.stats << "\n";
    std::cout << "CSV written: contour_family.csv, contour_family_cost.csv\n";
    return nested ? 0 : 1;
}
