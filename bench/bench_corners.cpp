// CORNERS -- the cross-corner surrogate economy claim: a 5x5x5 TSPC PVT
// cube characterized with <20% of the full traces while every
// surrogate-filled contour stays within 2 ps of the exhaustively traced
// reference. Runs the exhaustive sweep once (anchorsAll), then the
// active-learning driver at a ladder of tolerances, and reports the
// error-vs-transients Pareto in results/bench_corners.json. The exit
// code enforces the acceptance pair on the 2 ps run: traced fraction
// < 0.20 AND max surrogate contour error <= 2 ps.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <memory>
#include <optional>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/corner_family.hpp"

namespace {

using namespace shtrace;
using Clock = std::chrono::steady_clock;

/// One corner's ground-truth physics, built lazily and reused across the
/// Pareto rungs: evaluating h at a predicted point measures its distance
/// to the TRUE contour (|h|/||grad h||), with no polyline-discretization
/// floor -- the honest version of "error vs the traced reference", which
/// as a polyline carries its own chord error near the knee.
struct Oracle {
    RegisterFixture fixture;
    std::optional<CharacterizationProblem> problem;
};

/// Max residual distance over ~9 samples of the contour (endpoints
/// always included).
double residualError(const CharacterizationProblem& problem,
                     const std::vector<SkewPoint>& contour,
                     double gradientFloor, SimStats* stats) {
    if (contour.empty()) {
        return std::numeric_limits<double>::infinity();
    }
    double worst = 0.0;
    const std::size_t stride =
        std::max<std::size_t>(1, contour.size() / 8);
    for (std::size_t j = 0;;) {
        const HEvaluation eval =
            problem.h().evaluate(contour[j].setup, contour[j].hold, stats);
        if (!eval.success) {
            return std::numeric_limits<double>::infinity();
        }
        const double gradNorm = std::hypot(eval.dhds, eval.dhdh);
        worst = std::max(worst, std::abs(eval.h) /
                                    std::max(gradNorm, gradientFloor));
        if (j + 1 >= contour.size()) {
            break;
        }
        j = std::min(j + stride, contour.size() - 1);
    }
    return worst;
}

/// Distance from p to the segment [a, b].
double pointSegmentDistance(const SkewPoint& p, const SkewPoint& a,
                            const SkewPoint& b) {
    const double dx = b.setup - a.setup;
    const double dy = b.hold - a.hold;
    const double len2 = dx * dx + dy * dy;
    double t = 0.0;
    if (len2 > 0.0) {
        t = ((p.setup - a.setup) * dx + (p.hold - a.hold) * dy) / len2;
        t = std::min(1.0, std::max(0.0, t));
    }
    const double qx = a.setup + t * dx - p.setup;
    const double qy = a.hold + t * dy - p.hold;
    return std::hypot(qx, qy);
}

/// Max over candidate points of the distance to the reference polyline:
/// "how far does this contour stray from the traced truth".
double contourError(const std::vector<SkewPoint>& candidate,
                    const std::vector<SkewPoint>& reference) {
    if (candidate.empty() || reference.empty()) {
        return std::numeric_limits<double>::infinity();
    }
    double worst = 0.0;
    for (const SkewPoint& p : candidate) {
        double best = std::numeric_limits<double>::infinity();
        if (reference.size() == 1) {
            best = std::hypot(p.setup - reference.front().setup,
                              p.hold - reference.front().hold);
        }
        for (std::size_t s = 0; s + 1 < reference.size(); ++s) {
            best = std::min(best, pointSegmentDistance(p, reference[s],
                                                       reference[s + 1]));
        }
        worst = std::max(worst, best);
    }
    return worst;
}

struct ParetoRun {
    double tolerance = 0.0;
    CornerFamilyResult result;
    double wallSeconds = 0.0;
    double maxSurrogateError = 0.0;   ///< residual distance, surrogate rows
    double meanSurrogateError = 0.0;
    double maxPolylineError = 0.0;    ///< vs reference polylines (diagnostic)
};

}  // namespace

int main(int argc, char** argv) {
    using namespace shtrace;
    using namespace shtrace::bench;

    const std::string jsonPath =
        argc > 1 ? argv[1] : "bench_corners.json";

    printHeader("CORNERS",
                "5x5x5 TSPC PVT cube via cross-corner surrogate");

    PvtAxes axes;
    axes.process = {-1.0, -0.5, 0.0, 0.5, 1.0};
    axes.vdd = {2.25, 2.375, 2.5, 2.625, 2.75};
    axes.temperatureC = {-40.0, 0.0, 27.0, 85.0, 125.0};
    const std::size_t corners = axes.cornerCount();

    const CornerFixtureBuilder builder = [](const ProcessCorner& corner) {
        TspcOptions opt;
        opt.corner = corner;
        return buildTspcRegister(opt);
    };

    // Shared physics: the Fig. 8 window widened on both sides -- the
    // FF/cold/high-vdd corner's contour sits at smaller skews than the
    // nominal window, the SS/hot/low-vdd one at larger. maxPoints is
    // sized so every trace runs until it EXITS the window: truncated
    // traces would cover different arcs at different corners, which
    // poisons both the shape fit and the error metric. Both runs use
    // the SAME tracer settings: the comparison is surrogate vs trace,
    // not coarse vs fine. 48 control points keep the predicted
    // polyline's chord error at the contour knee well under the 2 ps
    // acceptance scale.
    RunConfig base = RunConfig::defaults().withThreads(0);
    base.criterion = tspcCriterion();
    base.tracer.bounds = SkewBounds{40e-12, 600e-12, 20e-12, 500e-12};
    base.tracer.maxPoints = 64;
    base.tracer.stepLength = 10e-12;
    base.tracer.maxStepLength = 40e-12;
    base.corners.controlPoints = 48;

    std::cout << "grid: " << axes.process.size() << " process x "
              << axes.vdd.size() << " vdd x " << axes.temperatureC.size()
              << " temperature = " << corners << " corners\n";

    // Exhaustive reference: every corner cold-traced.
    RunConfig exhaustiveConfig = base;
    exhaustiveConfig.corners.anchorsAll = true;
    const auto t0 = Clock::now();
    const CornerFamilyResult reference =
        characterizeCornerFamily(axes, builder, exhaustiveConfig);
    const double exhaustiveWall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::size_t referenceFailures = 0;
    for (const CornerFamilyRow& row : reference.rows) {
        if (!row.success) {
            ++referenceFailures;
            std::cerr << "reference corner " << row.corner << " failed: "
                      << row.failureReason << "\n";
        }
    }
    if (referenceFailures > 0) {
        return 1;
    }
    std::cout << "exhaustive reference: " << reference.tracedCount()
              << " traces, " << reference.stats.transientSolves
              << " transients, " << ps(exhaustiveWall) << "\n\n";

    // The Pareto ladder: looser tolerances trace less and err more. The
    // 2 ps rung is the acceptance run; its escalation cap guarantees the
    // <20% trace bound by construction (9 anchors + 15 escalations = 24
    // of 125), so the bench measures whether the ERROR bound also holds.
    const std::vector<double> tolerances = {8e-12, 4e-12, 2e-12};

    // Anchors: the default vertices + center, plus the six face centers.
    // The face centers put nodes at intermediate temperature/vdd at mid
    // process -- exactly where the derating curvature lives -- for the
    // same trace budget the escalation loop would otherwise spend
    // rediscovering them one probe at a time.
    std::vector<std::size_t> anchors = axes.anchorIndices();
    const std::size_t np = axes.process.size();
    const std::size_t nv = axes.vdd.size();
    const std::size_t nt = axes.temperatureC.size();
    const auto gridIndex = [&](std::size_t ip, std::size_t iv,
                               std::size_t it) {
        return (ip * nv + iv) * nt + it;
    };
    anchors.push_back(gridIndex(0, nv / 2, nt / 2));
    anchors.push_back(gridIndex(np - 1, nv / 2, nt / 2));
    anchors.push_back(gridIndex(np / 2, 0, nt / 2));
    anchors.push_back(gridIndex(np / 2, nv - 1, nt / 2));
    anchors.push_back(gridIndex(np / 2, nv / 2, 0));
    anchors.push_back(gridIndex(np / 2, nv / 2, nt - 1));

    const int escalationCap =
        static_cast<int>(corners / 5 - anchors.size() - 1);

    // Ground-truth oracles, shared across rungs; their transients are
    // verification cost, not characterization cost, and are tallied
    // separately.
    std::vector<std::unique_ptr<Oracle>> oracles(corners);
    SimStats verifyStats;
    const auto oracleFor =
        [&](std::size_t i) -> const CharacterizationProblem& {
        if (!oracles[i]) {
            auto oracle = std::make_unique<Oracle>();
            oracle->fixture = builder(cornerAtPvt(axes.at(i)));
            oracle->problem.emplace(oracle->fixture, base.criterion,
                                    base.recipe, &verifyStats);
            oracles[i] = std::move(oracle);
        }
        return *oracles[i]->problem;
    };

    std::vector<ParetoRun> runs;
    std::vector<std::vector<double>> runErrors;
    TablePrinter table({"tolerance", "traces", "traced %", "rounds",
                        "converged", "transients", "max err", "mean err",
                        "wall"});
    for (const double tolerance : tolerances) {
        RunConfig config = base;
        config.corners.tolerance = tolerance;
        config.corners.anchorIndices = anchors;
        config.corners.maxEscalations = escalationCap;

        ParetoRun run;
        run.tolerance = tolerance;
        const auto start = Clock::now();
        run.result = characterizeCornerFamily(axes, builder, config);
        run.wallSeconds =
            std::chrono::duration<double>(Clock::now() - start).count();

        double errorSum = 0.0;
        std::size_t surrogates = 0;
        std::vector<double> errors(corners, 0.0);
        for (std::size_t i = 0; i < corners; ++i) {
            const CornerFamilyRow& row = run.result.rows[i];
            if (!row.success) {
                std::cerr << "tolerance " << ps(tolerance) << ": corner "
                          << row.corner << " failed: " << row.failureReason
                          << "\n";
                return 1;
            }
            run.maxPolylineError =
                std::max(run.maxPolylineError,
                         contourError(row.contour,
                                      reference.rows[i].contour));
            if (row.provenance == CornerProvenance::Surrogate) {
                const double err = residualError(
                    oracleFor(i), row.contour,
                    base.tracer.corrector.gradientTol, &verifyStats);
                errors[i] = err;
                run.maxSurrogateError = std::max(run.maxSurrogateError, err);
                errorSum += err;
                ++surrogates;
            }
        }
        run.meanSurrogateError =
            surrogates > 0 ? errorSum / static_cast<double>(surrogates) : 0.0;

        table.addRowValues(
            ps(tolerance), static_cast<int>(run.result.tracedCount()),
            100.0 * static_cast<double>(run.result.tracedCount()) /
                static_cast<double>(corners),
            run.result.rounds, run.result.converged ? "yes" : "no",
            static_cast<unsigned long long>(
                run.result.stats.transientSolves),
            ps(run.maxSurrogateError), ps(run.meanSurrogateError),
            ps(run.wallSeconds));
        runs.push_back(std::move(run));
        runErrors.push_back(std::move(errors));
    }
    table.print(std::cout);
    std::cout << "verification oracle cost: " << verifyStats.transientSolves
              << " transients (not counted against any run)\n";

    const ParetoRun& acceptance = runs.back();
    const double tracedFraction =
        static_cast<double>(acceptance.result.tracedCount()) /
        static_cast<double>(corners);
    const double speedup =
        static_cast<double>(reference.stats.transientSolves) /
        static_cast<double>(acceptance.result.stats.transientSolves);
    std::cout << "\nacceptance run (tolerance " << ps(acceptance.tolerance)
              << "): " << acceptance.result.tracedCount() << "/" << corners
              << " traced (" << 100.0 * tracedFraction << "%), max "
              << "surrogate error " << ps(acceptance.maxSurrogateError)
              << ", transient speedup x" << speedup << "\n";

    std::ofstream json(jsonPath);
    json.precision(17);
    json << "{\n  \"workload\": \"TSPC register, "
         << axes.process.size() << "x" << axes.vdd.size() << "x"
         << axes.temperatureC.size()
         << " PVT cube, Euler-Newton contours\",\n"
         << "  \"corners\": " << corners << ",\n"
         << "  \"exhaustive\": {\"traces\": " << reference.tracedCount()
         << ", \"transients\": " << reference.stats.transientSolves
         << ", \"wall_seconds\": " << exhaustiveWall << "},\n"
         << "  \"pareto\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ParetoRun& r = runs[i];
        json << "    {\"tolerance_seconds\": " << r.tolerance
             << ", \"traces\": " << r.result.tracedCount()
             << ", \"traced_fraction\": "
             << static_cast<double>(r.result.tracedCount()) /
                    static_cast<double>(corners)
             << ",\n     \"anchors\": " << r.result.anchorsTraced
             << ", \"escalated\": " << r.result.escalated
             << ", \"surrogate_accepted\": " << r.result.surrogateAccepted
             << ", \"rounds\": " << r.result.rounds
             << ", \"converged\": "
             << (r.result.converged ? "true" : "false")
             << ",\n     \"transients\": " << r.result.stats.transientSolves
             << ", \"max_surrogate_error_seconds\": " << r.maxSurrogateError
             << ",\n     \"mean_surrogate_error_seconds\": "
             << r.meanSurrogateError
             << ", \"max_polyline_error_seconds\": " << r.maxPolylineError
             << ", \"wall_seconds\": " << r.wallSeconds << "}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"acceptance\": {\"tolerance_seconds\": "
         << acceptance.tolerance
         << ", \"traced_fraction\": " << tracedFraction
         << ",\n    \"trace_budget_fraction\": 0.2"
         << ", \"max_surrogate_error_seconds\": "
         << acceptance.maxSurrogateError
         << ", \"error_budget_seconds\": 2e-12,\n    \"transient_speedup\": "
         << speedup << ", \"pass\": "
         << ((tracedFraction < 0.2 && acceptance.maxSurrogateError <= 2e-12)
                 ? "true"
                 : "false")
         << "},\n  \"corner_rows\": [\n";
    for (std::size_t i = 0; i < corners; ++i) {
        const CornerFamilyRow& row = acceptance.result.rows[i];
        json << "    {\"corner\": \"" << row.corner << "\", \"provenance\": \""
             << toString(row.provenance) << "\", \"anchor\": "
             << (row.anchor ? "true" : "false")
             << ", \"warm_start_corner\": " << row.warmStartCorner
             << ",\n     \"error_seconds\": " << runErrors.back()[i]
             << ", \"polyline_error_seconds\": "
             << contourError(row.contour, reference.rows[i].contour)
             << ", \"acquisition_score\": " << row.acquisitionScore
             << ", \"transients\": " << row.transientCount
             << ", \"wall_seconds\": " << row.stats.wallSeconds << "}"
             << (i + 1 < corners ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.close();
    std::cout << "JSON written: " << jsonPath << "\n";

    bool pass = true;
    if (!(tracedFraction < 0.2)) {
        std::cerr << "traced fraction " << tracedFraction
                  << " is not under the 20% budget\n";
        pass = false;
    }
    if (!(acceptance.maxSurrogateError <= 2e-12)) {
        std::cerr << "max surrogate error "
                  << ps(acceptance.maxSurrogateError)
                  << " exceeds the 2 ps budget\n";
        pass = false;
    }
    if (!pass) {
        return 1;
    }
    std::cout << "acceptance criteria met\n";
    return 0;
}
