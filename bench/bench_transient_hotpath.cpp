// HOTPATH -- end-to-end cost of the chord-Newton transient hot path on the
// two paper contours: Fig. 8 (TSPC, 50% criterion) and Fig. 12 (C2MOS, 90%
// criterion), each characterized with Jacobian reuse off (legacy
// assemble-and-factor-every-iteration) and on (the default). Prints a
// comparison table and writes a machine-readable JSON report
// (default bench_hotpath.json, override with argv[1]) so the numbers in
// README.md are regenerable with scripts/bench_hotpath.sh.
//
// Exit code asserts the PR's acceptance criterion on both cells: reuse-on
// must spend <= 60% of reuse-off's LU factorizations and strictly fewer
// full device-assembly passes while producing the same number of contour
// points.
#include "bench_common.hpp"

#include <chrono>
#include <fstream>

int main(int argc, char** argv) {
    using namespace shtrace;
    using namespace shtrace::bench;
    using Clock = std::chrono::steady_clock;

    const std::string jsonPath = argc > 1 ? argv[1] : "bench_hotpath.json";

    struct Run {
        std::string cell;
        bool reuse = false;
        std::size_t points = 0;
        double wallSeconds = 0.0;
        SimStats stats;
    };
    std::vector<Run> runs;

    struct Cell {
        std::string name;
        RegisterFixture fixture;
        CriterionOptions criterion;
        SkewBounds window;
    };
    std::vector<Cell> cells;
    cells.push_back({"tspc_fig8", buildTspcRegister(), tspcCriterion(),
                     tspcWindow()});
    cells.push_back({"c2mos_fig12", buildC2mosRegister(), c2mosCriterion(),
                     c2mosWindow()});

    printHeader("HOTPATH", "chord-Newton reuse off/on, Fig. 8 + Fig. 12");

    bool pass = true;
    for (const Cell& cell : cells) {
        for (const bool reuse : {false, true}) {
            CharacterizeOptions opt;
            opt.criterion = cell.criterion;
            opt.tracer.maxPoints = 40;
            opt.tracer.bounds = cell.window;
            opt.tracer.stepLength = 8e-12;
            opt.tracer.maxStepLength = 30e-12;
            opt.withJacobianReuse(reuse);

            const auto t0 = Clock::now();
            const CharacterizeResult result =
                characterizeInterdependent(cell.fixture, opt);
            const double wall =
                std::chrono::duration<double>(Clock::now() - t0).count();
            if (!result.success) {
                std::cerr << cell.name << " reuse=" << reuse
                          << ": characterization failed\n";
                return 1;
            }
            runs.push_back({cell.name, reuse, result.contour.points.size(),
                            wall, result.stats});
        }

        const Run& off = runs[runs.size() - 2];
        const Run& on = runs[runs.size() - 1];
        TablePrinter table({"reuse", "points", "transients", "LU factor",
                            "LU solve", "newton", "chord", "dev evals",
                            "wall (s)"});
        for (const Run* r : {&off, &on}) {
            table.addRowValues(r->reuse ? "on" : "off",
                               static_cast<int>(r->points),
                               static_cast<int>(r->stats.transientSolves),
                               static_cast<int>(r->stats.luFactorizations),
                               static_cast<int>(r->stats.luSolves),
                               static_cast<int>(r->stats.newtonIterations),
                               static_cast<int>(r->stats.chordIterations),
                               static_cast<int>(r->stats.deviceEvaluations),
                               r->wallSeconds);
        }
        std::cout << "\n--- " << cell.name << " ---\n";
        table.print(std::cout);
        const double factorRatio =
            static_cast<double>(on.stats.luFactorizations) /
            static_cast<double>(off.stats.luFactorizations);
        std::cout << "LU factorizations: " << (1.0 - factorRatio) * 100.0
                  << "% fewer, wall speedup x"
                  << off.wallSeconds / on.wallSeconds << "\n";

        // Acceptance criterion (see docs/ALGORITHM.md section 13).
        if (on.stats.luFactorizations * 10 >
                off.stats.luFactorizations * 6 ||
            on.stats.deviceEvaluations >= off.stats.deviceEvaluations ||
            on.points != off.points) {
            std::cerr << cell.name
                      << ": reuse-on failed the >=40% factorization / fewer "
                         "assembly-passes criterion\n";
            pass = false;
        }
    }

    std::ofstream json(jsonPath);
    json << "{\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run& r = runs[i];
        json << "    {\"cell\": \"" << r.cell << "\", \"jacobian_reuse\": "
             << (r.reuse ? "true" : "false")
             << ", \"contour_points\": " << r.points
             << ",\n     \"transient_solves\": " << r.stats.transientSolves
             << ", \"time_steps\": " << r.stats.timeSteps
             << ", \"newton_iterations\": " << r.stats.newtonIterations
             << ",\n     \"lu_factorizations\": " << r.stats.luFactorizations
             << ", \"lu_solves\": " << r.stats.luSolves
             << ", \"chord_iterations\": " << r.stats.chordIterations
             << ",\n     \"residual_only_assemblies\": "
             << r.stats.residualOnlyAssemblies
             << ", \"bypassed_factorizations\": "
             << r.stats.bypassedFactorizations
             << ", \"device_evaluations\": " << r.stats.deviceEvaluations
             << ",\n     \"wall_seconds\": " << r.wallSeconds << "}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.close();
    std::cout << "\nJSON written: " << jsonPath << "\n";
    if (!pass) {
        return 1;
    }
    std::cout << "acceptance criterion met on both cells\n";
    return 0;
}
