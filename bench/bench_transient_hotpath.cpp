// HOTPATH -- end-to-end cost of the chord-Newton transient hot path on the
// two paper contours: Fig. 8 (TSPC, 50% criterion) and Fig. 12 (C2MOS, 90%
// criterion), each characterized with Jacobian reuse off (legacy
// assemble-and-factor-every-iteration) and on (the default). Prints a
// comparison table and writes a machine-readable JSON report
// (default bench_hotpath.json, override with argv[1]) so the numbers in
// README.md are regenerable with scripts/bench_hotpath.sh.
//
// Exit code asserts the PR's acceptance criterion on both cells: reuse-on
// must spend <= 60% of reuse-off's LU factorizations and strictly fewer
// full device-assembly passes while producing the same number of contour
// points.
//
// Second section (SPARSE): the linear-solver backend sweep on the N-bit
// TSPC register chain (N = 1, 4, 16, 64; 7N + 6 unknowns). Each size runs
// the same fixed-grid capture transient on the dense backend, the sparse
// backend, and sparse + SoA batch device eval, and the dense/sparse
// crossover size is recorded in a second JSON report (default
// bench_sparse.json, override with argv[2]) -- the measurement behind
// kSparseAutoThreshold in docs/LINALG.md. Exit code additionally asserts
// that sparse beats dense on the 16-bit chain.
#include "bench_common.hpp"

#include <chrono>
#include <fstream>

#include "shtrace/cells/register_chain.hpp"

int main(int argc, char** argv) {
    using namespace shtrace;
    using namespace shtrace::bench;
    using Clock = std::chrono::steady_clock;

    const std::string jsonPath = argc > 1 ? argv[1] : "bench_hotpath.json";
    const std::string sparseJsonPath =
        argc > 2 ? argv[2] : "bench_sparse.json";

    struct Run {
        std::string cell;
        bool reuse = false;
        std::size_t points = 0;
        double wallSeconds = 0.0;
        SimStats stats;
    };
    std::vector<Run> runs;

    struct Cell {
        std::string name;
        RegisterFixture fixture;
        CriterionOptions criterion;
        SkewBounds window;
    };
    std::vector<Cell> cells;
    cells.push_back({"tspc_fig8", buildTspcRegister(), tspcCriterion(),
                     tspcWindow()});
    cells.push_back({"c2mos_fig12", buildC2mosRegister(), c2mosCriterion(),
                     c2mosWindow()});

    printHeader("HOTPATH", "chord-Newton reuse off/on, Fig. 8 + Fig. 12");

    bool pass = true;
    for (const Cell& cell : cells) {
        for (const bool reuse : {false, true}) {
            CharacterizeOptions opt;
            opt.criterion = cell.criterion;
            opt.tracer.maxPoints = 40;
            opt.tracer.bounds = cell.window;
            opt.tracer.stepLength = 8e-12;
            opt.tracer.maxStepLength = 30e-12;
            opt.withJacobianReuse(reuse);

            const auto t0 = Clock::now();
            const CharacterizeResult result =
                characterizeInterdependent(cell.fixture, opt);
            const double wall =
                std::chrono::duration<double>(Clock::now() - t0).count();
            if (!result.success) {
                std::cerr << cell.name << " reuse=" << reuse
                          << ": characterization failed\n";
                return 1;
            }
            runs.push_back({cell.name, reuse, result.contour.points.size(),
                            wall, result.stats});
        }

        const Run& off = runs[runs.size() - 2];
        const Run& on = runs[runs.size() - 1];
        TablePrinter table({"reuse", "points", "transients", "LU factor",
                            "LU solve", "newton", "chord", "dev evals",
                            "wall (s)"});
        for (const Run* r : {&off, &on}) {
            table.addRowValues(r->reuse ? "on" : "off",
                               static_cast<int>(r->points),
                               static_cast<int>(r->stats.transientSolves),
                               static_cast<int>(r->stats.luFactorizations),
                               static_cast<int>(r->stats.luSolves),
                               static_cast<int>(r->stats.newtonIterations),
                               static_cast<int>(r->stats.chordIterations),
                               static_cast<int>(r->stats.deviceEvaluations),
                               r->wallSeconds);
        }
        std::cout << "\n--- " << cell.name << " ---\n";
        table.print(std::cout);
        const double factorRatio =
            static_cast<double>(on.stats.luFactorizations) /
            static_cast<double>(off.stats.luFactorizations);
        std::cout << "LU factorizations: " << (1.0 - factorRatio) * 100.0
                  << "% fewer, wall speedup x"
                  << off.wallSeconds / on.wallSeconds << "\n";

        // Acceptance criterion (see docs/ALGORITHM.md section 13).
        if (on.stats.luFactorizations * 10 >
                off.stats.luFactorizations * 6 ||
            on.stats.deviceEvaluations >= off.stats.deviceEvaluations ||
            on.points != off.points) {
            std::cerr << cell.name
                      << ": reuse-on failed the >=40% factorization / fewer "
                         "assembly-passes criterion\n";
            pass = false;
        }
    }

    std::ofstream json(jsonPath);
    json << "{\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run& r = runs[i];
        json << "    {\"cell\": \"" << r.cell << "\", \"jacobian_reuse\": "
             << (r.reuse ? "true" : "false")
             << ", \"contour_points\": " << r.points
             << ",\n     \"transient_solves\": " << r.stats.transientSolves
             << ", \"time_steps\": " << r.stats.timeSteps
             << ", \"newton_iterations\": " << r.stats.newtonIterations
             << ",\n     \"lu_factorizations\": " << r.stats.luFactorizations
             << ", \"lu_solves\": " << r.stats.luSolves
             << ", \"chord_iterations\": " << r.stats.chordIterations
             << ",\n     \"residual_only_assemblies\": "
             << r.stats.residualOnlyAssemblies
             << ", \"bypassed_factorizations\": "
             << r.stats.bypassedFactorizations
             << ", \"device_evaluations\": " << r.stats.deviceEvaluations
             << ",\n     \"wall_seconds\": " << r.wallSeconds << "}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.close();
    std::cout << "\nJSON written: " << jsonPath << "\n";

    // ---------------------------------------------------------------------
    // SPARSE: backend sweep over the register-chain sizes.

    printHeader("SPARSE", "dense vs sparse vs sparse+batch, N-bit chain");

    struct BackendRun {
        int bits = 0;
        std::size_t unknowns = 0;
        std::string config;
        double wallSeconds = 0.0;
        SimStats stats;
    };
    std::vector<BackendRun> sweeps;
    double denseAt16 = 0.0;
    double sparseAt16 = 0.0;
    int crossoverBits = -1;

    for (const int bits : {1, 4, 16, 64}) {
        RegisterChainOptions chainOpt;
        chainOpt.bits = bits;
        const RegisterFixture chain = buildTspcRegisterChain(chainOpt);
        chain.data->setSkews(300e-12, 300e-12);

        struct Config {
            const char* name;
            LinalgBackend backend;
            bool batch;
        };
        const Config configs[] = {
            {"dense", LinalgBackend::Dense, false},
            {"sparse", LinalgBackend::Sparse, false},
            {"sparse+batch", LinalgBackend::Sparse, true},
        };
        TablePrinter table({"config", "LU factor", "refactor", "batch asm",
                            "wall (s)"});
        for (const Config& cfg : configs) {
            TransientOptions opt;
            opt.tStop = 11.6e-9;
            opt.fixedSteps = 1160;  // the default 10 ps recipe
            opt.storeStates = false;
            opt.linalg = cfg.backend;
            opt.batchDeviceEval = cfg.batch;

            // Min over repetitions: the noise-robust statistic. The large
            // dense runs are expensive; one repetition is representative
            // there because the run itself is long.
            const int reps = bits <= 16 ? 3 : 1;
            double best = 0.0;
            SimStats stats;
            for (int rep = 0; rep < reps; ++rep) {
                SimStats repStats;
                const auto t0 = Clock::now();
                const TransientResult tr =
                    TransientAnalysis(chain.circuit, opt).run(&repStats);
                const double wall =
                    std::chrono::duration<double>(Clock::now() - t0).count();
                if (!tr.success) {
                    std::cerr << "chain bits=" << bits << " " << cfg.name
                              << ": transient failed (" << tr.failureReason
                              << ")\n";
                    return 1;
                }
                if (rep == 0 || wall < best) {
                    best = wall;
                    stats = repStats;
                }
            }
            sweeps.push_back({bits, chain.circuit.systemSize(), cfg.name,
                              best, stats});
            table.addRowValues(cfg.name,
                               static_cast<int>(stats.luFactorizations),
                               static_cast<int>(stats.sparseRefactorizations),
                               static_cast<int>(stats.batchAssemblies), best);
        }
        const BackendRun& dense = sweeps[sweeps.size() - 3];
        const BackendRun& sparse = sweeps[sweeps.size() - 2];
        std::cout << "\n--- chain bits=" << bits << " ("
                  << dense.unknowns << " unknowns) ---\n";
        table.print(std::cout);
        std::cout << "sparse/dense wall x"
                  << dense.wallSeconds / sparse.wallSeconds << "\n";
        if (crossoverBits < 0 && sparse.wallSeconds < dense.wallSeconds) {
            crossoverBits = bits;
        }
        if (bits == 16) {
            denseAt16 = dense.wallSeconds;
            sparseAt16 = sparse.wallSeconds;
        }
    }

    std::ofstream sparseJson(sparseJsonPath);
    sparseJson << "{\n  \"workload\": \"fixed-grid capture transient, 1160 "
                  "steps, TSPC register chain\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const BackendRun& r = sweeps[i];
        sparseJson << "    {\"bits\": " << r.bits
                   << ", \"unknowns\": " << r.unknowns << ", \"config\": \""
                   << r.config << "\",\n     \"lu_factorizations\": "
                   << r.stats.luFactorizations
                   << ", \"sparse_refactorizations\": "
                   << r.stats.sparseRefactorizations
                   << ", \"batch_assemblies\": " << r.stats.batchAssemblies
                   << ",\n     \"lu_solves\": " << r.stats.luSolves
                   << ", \"newton_iterations\": " << r.stats.newtonIterations
                   << ", \"wall_seconds\": " << r.wallSeconds << "}"
                   << (i + 1 < sweeps.size() ? "," : "") << "\n";
    }
    sparseJson << "  ],\n  \"crossover_bits\": " << crossoverBits
               << ",\n  \"crossover_unknowns\": "
               << (crossoverBits > 0 ? 7 * crossoverBits + 6 : -1)
               << ",\n  \"auto_threshold_unknowns\": "
               << kSparseAutoThreshold << "\n}\n";
    sparseJson.close();
    std::cout << "\nJSON written: " << sparseJsonPath
              << " (crossover at bits=" << crossoverBits << ")\n";

    if (sparseAt16 >= denseAt16) {
        std::cerr << "sparse did not beat dense on the 16-bit chain ("
                  << sparseAt16 << "s vs " << denseAt16 << "s)\n";
        pass = false;
    }

    if (!pass) {
        return 1;
    }
    std::cout << "acceptance criteria met\n";
    return 0;
}
