// ABL2 -- integrator ablation (ours): Backward Euler vs trapezoidal and
// grid resolution, measured on (a) the accuracy of h at a reference skew
// point against a fine-grid reference, and (b) the effect on the traced
// contour position. Justifies the default recipe (TRAP on a 10 ps fixed
// grid) recorded in DESIGN.md.
#include "bench_common.hpp"

#include <cmath>

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("ABL2", "integrator method / grid resolution ablation");

    const RegisterFixture reg = buildTspcRegister();

    // Reference: TRAP on a 2 ps grid.
    SimulationRecipe refRecipe;
    refRecipe.method = IntegrationMethod::Trapezoidal;
    refRecipe.dtNominal = 2e-12;
    const CharacterizationProblem refProblem(reg, tspcCriterion(),
                                             refRecipe);
    const double ts = 240e-12;
    const double th = 200e-12;
    const double hRef = refProblem.h().evaluateValueOnly(ts, th).h;
    std::cout << "reference h(240ps, 200ps) = " << hRef
              << " V  (TRAP, dt = 2ps)\n\n";

    TablePrinter table({"method", "dt", "steps/transient", "h error (V)",
                        "wall per h-eval (s)"});
    for (const IntegrationMethod method :
         {IntegrationMethod::BackwardEuler, IntegrationMethod::Trapezoidal,
          IntegrationMethod::Gear2}) {
        for (double dt : {40e-12, 20e-12, 10e-12, 5e-12}) {
            SimulationRecipe recipe;
            recipe.method = method;
            recipe.dtNominal = dt;
            const CharacterizationProblem problem(reg, tspcCriterion(),
                                                  recipe);
            SimStats stats;
            double h = 0.0;
            {
                ScopedTimer timer(&stats);
                h = problem.h().evaluateValueOnly(ts, th, &stats).h;
            }
            const char* name =
                method == IntegrationMethod::BackwardEuler
                    ? "BE"
                    : (method == IntegrationMethod::Trapezoidal ? "TRAP"
                                                                : "Gear2");
            table.addRowValues(
                name, ps(dt),
                static_cast<unsigned long long>(stats.timeSteps),
                std::fabs(h - hRef), stats.wallSeconds);
        }
    }
    table.print(std::cout);
    std::cout << "\nTRAP at dt = 10 ps (the default recipe) matches the "
                 "fine reference far better\nthan BE at the same cost -- "
                 "second-order accuracy is what keeps the fixed grid\ncheap "
                 "enough for thousands of h evaluations.\n";
    return 0;
}
