// ABL1 -- ablation of the Euler predictor (ours, extending the paper's
// analysis): trace the same TSPC contour with
//   (a) the full Euler-Newton tangent predictor at several step lengths;
//   (b) a degenerate "no predictor" variant (tangent replaced by a pure
//       hold-axis walk, mimicking naive re-seeding from the previous
//       point).
// The tangent predictor should deliver lower corrector iteration counts
// and fewer step-shrink retries at equal coverage -- the property the
// paper leans on for its "2-3 MPNR iterations typical" behaviour.
#include "bench_common.hpp"

#include "shtrace/chz/mpnr.hpp"
#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/linalg/pseudo_inverse.hpp"

namespace {

using namespace shtrace;

/// Naive baseline: walk DOWN the hold axis from the previous point and let
/// MPNR pull each guess back to the curve (no tangent information).
struct NaiveWalkResult {
    int points = 0;
    double totalIterations = 0.0;
    int failures = 0;
};

NaiveWalkResult naiveWalk(const HFunction& h, SkewPoint start, double step,
                          int maxPoints, const SkewBounds& bounds,
                          SimStats* stats) {
    NaiveWalkResult result;
    MpnrResult current = solveMpnr(h, start, {}, stats);
    if (!current.converged) {
        ++result.failures;
        return result;
    }
    while (result.points < maxPoints) {
        SkewPoint guess = current.point;
        guess.hold -= step;  // pure axis walk; no tangent
        if (!bounds.contains(guess)) {
            break;
        }
        const MpnrResult next = solveMpnr(h, guess, {}, stats);
        if (!next.converged) {
            ++result.failures;
            break;
        }
        ++result.points;
        result.totalIterations += next.iterations;
        current = next;
    }
    return result;
}

}  // namespace

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("ABL1", "Euler tangent predictor vs naive axis walk");

    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg, tspcCriterion());
    const SeedResult seed = findSeedPoint(problem.h(), problem.passSign());
    if (!seed.found) {
        std::cerr << "seed search failed\n";
        return 1;
    }
    SkewPoint start = seed.seed;
    start.hold = tspcWindow().holdMax;

    TablePrinter table({"predictor", "alpha", "points",
                        "avg corrector iters", "retries/failures",
                        "transients"});

    for (double alpha : {4e-12, 8e-12, 16e-12}) {
        SimStats stats;
        TracerOptions opt;
        opt.bounds = tspcWindow();
        opt.maxPoints = 24;
        opt.stepLength = alpha;
        opt.maxStepLength = alpha;   // fixed alpha for the ablation
        opt.growFactor = 1.0;
        const TracedContour contour =
            traceContour(problem.h(), start, opt, &stats);
        table.addRowValues(
            "Euler tangent", ps(alpha),
            static_cast<int>(contour.points.size()),
            contour.averageCorrectorIterations(), contour.predictorRetries,
            static_cast<unsigned long long>(stats.hEvaluations));
    }

    for (double alpha : {4e-12, 8e-12, 16e-12}) {
        SimStats stats;
        const NaiveWalkResult naive = naiveWalk(
            problem.h(), start, alpha, 23, tspcWindow(), &stats);
        table.addRowValues(
            "naive hold-axis walk", ps(alpha), naive.points + 1,
            naive.points > 0 ? naive.totalIterations / naive.points : 0.0,
            naive.failures,
            static_cast<unsigned long long>(stats.hEvaluations));
    }
    table.print(std::cout);
    std::cout << "\nThe tangent predictor needs fewer corrector iterations "
                 "per point at equal\nstep length -- and unlike the axis "
                 "walk it follows the curve around the knee\ninto the "
                 "hold-asymptote region (more curve covered per point).\n";
    return 0;
}
