// ABL3 -- corrector ablation (ours): the paper's Moore-Penrose Newton
// corrector vs the pseudo-arclength corrector classical continuation uses
// (Allgower-Georg, the paper's own reference for the method). Both refine
// the same Euler predictions on the same TSPC contour; we compare
// iteration counts, retries and the traced coverage across step lengths.
#include "bench_common.hpp"

#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("ABL3", "MPNR vs pseudo-arclength corrector");

    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg, tspcCriterion());
    const SeedResult seed = findSeedPoint(problem.h(), problem.passSign());
    if (!seed.found) {
        std::cerr << "seed search failed\n";
        return 1;
    }
    SkewPoint start = seed.seed;
    start.hold = tspcWindow().holdMax;

    TablePrinter table({"corrector", "alpha", "points",
                        "avg corrector iters", "retries", "transients",
                        "max |h|"});
    for (const CorrectorKind kind :
         {CorrectorKind::MoorePenrose, CorrectorKind::PseudoArclength}) {
        for (double alpha : {6e-12, 12e-12, 24e-12}) {
            SimStats stats;
            TracerOptions opt;
            opt.bounds = tspcWindow();
            opt.maxPoints = 24;
            opt.stepLength = alpha;
            opt.maxStepLength = alpha;
            opt.growFactor = 1.0;
            opt.correctorKind = kind;
            const TracedContour contour =
                traceContour(problem.h(), start, opt, &stats);
            double maxResidual = 0.0;
            for (double r : contour.residuals) {
                maxResidual = std::max(maxResidual, r);
            }
            table.addRowValues(
                kind == CorrectorKind::MoorePenrose ? "MPNR"
                                                    : "pseudo-arclength",
                ps(alpha), static_cast<int>(contour.points.size()),
                contour.averageCorrectorIterations(),
                contour.predictorRetries,
                static_cast<unsigned long long>(stats.hEvaluations),
                maxResidual);
        }
    }
    table.print(std::cout);
    std::cout << "\nBoth correctors deliver in-tolerance points; MPNR's "
                 "minimum-norm update is the\npaper's choice, while the "
                 "arclength constraint pins each point to its predictor\n"
                 "plane (useful when the curve folds back -- not the case "
                 "for setup/hold contours).\n";
    return 0;
}
