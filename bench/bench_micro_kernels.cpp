// MICRO -- google-benchmark micro-benchmarks of the simulator kernels that
// dominate characterization cost: dense LU factor/solve on the REAL
// TSPC-assembled MNA Jacobian (a*C + G at a mid-transient state, not a
// random matrix), full vs residual-only circuit assembly, the chord step
// kernel vs the full Newton step kernel, one transient, and one complete
// gradient evaluation. The chord/full and residual/full ratios are the
// per-iteration savings the Jacobian-reuse path banks on.
#include <benchmark/benchmark.h>

#include <random>

#include "shtrace/analysis/adjoint.hpp"
#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/register_chain.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/devices/mosfet_batch.hpp"
#include "shtrace/linalg/linear_solver.hpp"
#include "shtrace/linalg/lu.hpp"
#include "shtrace/obs/span.hpp"

namespace {

using namespace shtrace;

Matrix randomSystem(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            m(i, j) = dist(rng);
        }
        m(i, i) += 3.0;
    }
    return m;
}

// A register fixture advanced to the middle of the capture transient, so
// the assembled matrices carry realistic operating-point stamps (devices
// in saturation/triode/cutoff, charged caps) instead of the DC state.
struct TspcMidTransient {
    RegisterFixture reg = buildTspcRegister();
    Vector x;
    double t = 5.8e-9;

    TspcMidTransient() {
        reg.data->setSkews(300e-12, 300e-12);
        TransientOptions opt;
        opt.tStop = t;
        opt.fixedSteps = 580;  // the default 10 ps recipe, half the window
        opt.storeStates = false;
        x = TransientAnalysis(reg.circuit, opt).run().finalState;
    }
};

// The backward-Euler iteration matrix J = C/dt + G at the mid-transient
// state -- the exact matrix the hot loop factors.
Matrix tspcIterationMatrix(const TspcMidTransient& mid) {
    Assembler asmb(mid.reg.circuit.systemSize());
    mid.reg.circuit.assemble(mid.x, mid.t, asmb);
    Matrix j = asmb.c();
    j *= 1.0 / 10e-12;
    j += asmb.g();
    return j;
}

void BM_LuFactorRandom(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomSystem(n, 42);
    LuFactorization lu;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lu.factor(a));
    }
}
BENCHMARK(BM_LuFactorRandom)->Arg(8)->Arg(13)->Arg(20)->Arg(40);

void BM_TspcLuFactor(benchmark::State& state) {
    // Factor the real TSPC iteration matrix (what a full Newton iteration
    // pays and a chord iteration skips).
    const TspcMidTransient mid;
    const Matrix j = tspcIterationMatrix(mid);
    LuFactorization lu;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lu.factor(j));
    }
}
BENCHMARK(BM_TspcLuFactor);

void BM_TspcLuSolve(benchmark::State& state) {
    const TspcMidTransient mid;
    const Matrix j = tspcIterationMatrix(mid);
    LuFactorization lu;
    lu.factor(j);
    Vector rhs(j.rows(), 1e-3);
    Vector b(j.rows());
    for (auto _ : state) {
        b = rhs;
        lu.solveInPlace(b);
        benchmark::DoNotOptimize(b);
    }
}
BENCHMARK(BM_TspcLuSolve);

void BM_TspcAssembly(benchmark::State& state) {
    // Full pass: f, q, G and C (what a full Newton iteration evaluates).
    const TspcMidTransient mid;
    Assembler asmb(mid.reg.circuit.systemSize());
    for (auto _ : state) {
        mid.reg.circuit.assemble(mid.x, mid.t, asmb);
        benchmark::DoNotOptimize(asmb.f());
    }
}
BENCHMARK(BM_TspcAssembly);

void BM_TspcResidualAssembly(benchmark::State& state) {
    // Residual-only pass: f and q without the Jacobian stamps (what a
    // chord iteration evaluates). The gap to BM_TspcAssembly is the
    // per-iteration assembly saving of the reuse path.
    const TspcMidTransient mid;
    Assembler asmb(mid.reg.circuit.systemSize());
    for (auto _ : state) {
        mid.reg.circuit.assembleResidual(mid.x, mid.t, asmb);
        benchmark::DoNotOptimize(asmb.f());
    }
}
BENCHMARK(BM_TspcResidualAssembly);

void BM_TspcFullNewtonStepKernel(benchmark::State& state) {
    // One full Newton iteration's linear-algebra + assembly cost:
    // assemble f/q/G/C, form J = C/dt + G, factor, back-substitute.
    const TspcMidTransient mid;
    const std::size_t n = mid.reg.circuit.systemSize();
    Assembler asmb(n);
    Matrix j(n, n);
    LuFactorization lu;
    Vector rhs(n);
    for (auto _ : state) {
        mid.reg.circuit.assemble(mid.x, mid.t, asmb);
        j = asmb.c();
        j *= 1.0 / 10e-12;
        j += asmb.g();
        lu.factor(j);
        rhs = asmb.f();
        lu.solveInPlace(rhs);
        benchmark::DoNotOptimize(rhs);
    }
}
BENCHMARK(BM_TspcFullNewtonStepKernel);

void BM_TspcChordStepKernel(benchmark::State& state) {
    // One chord iteration's cost: residual-only assembly plus a
    // back-substitution on the stale factors. The ratio to
    // BM_TspcFullNewtonStepKernel is the per-iteration chord speedup.
    const TspcMidTransient mid;
    const std::size_t n = mid.reg.circuit.systemSize();
    Assembler asmb(n);
    LuFactorization lu;
    lu.factor(tspcIterationMatrix(mid));
    Vector rhs(n);
    for (auto _ : state) {
        mid.reg.circuit.assembleResidual(mid.x, mid.t, asmb);
        rhs = asmb.f();
        lu.solveInPlace(rhs);
        benchmark::DoNotOptimize(rhs);
    }
}
BENCHMARK(BM_TspcChordStepKernel);

void BM_TspcChordStepKernelSpanned(benchmark::State& state) {
    // The chord-step kernel again, but with the span macros placed the way
    // the instrumented hot loop places them, run at the default detail
    // level (Off). The gap to BM_TspcChordStepKernel is the disabled cost
    // of instrumentation -- one relaxed atomic load per span site -- and
    // scripts/check.sh's obs stage gates it at <2%.
    const TspcMidTransient mid;
    const std::size_t n = mid.reg.circuit.systemSize();
    Assembler asmb(n);
    LuFactorization lu;
    lu.factor(tspcIterationMatrix(mid));
    Vector rhs(n);
    for (auto _ : state) {
        SHTRACE_SPAN("bench.chord_step");
        mid.reg.circuit.assembleResidual(mid.x, mid.t, asmb);
        {
            SHTRACE_FINE_SPAN("bench.back_substitute");
            rhs = asmb.f();
            lu.solveInPlace(rhs);
        }
        benchmark::DoNotOptimize(rhs);
    }
}
BENCHMARK(BM_TspcChordStepKernelSpanned);

void BM_TspcTransient(benchmark::State& state) {
    const bool sensitivities = state.range(0) != 0;
    const bool reuse = state.range(1) != 0;
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    TransientOptions opt;
    opt.tStop = 11.6e-9;
    opt.fixedSteps = 1160;  // the default 10 ps recipe
    opt.trackSkewSensitivities = sensitivities;
    opt.jacobianReuse = reuse;
    opt.storeStates = false;
    for (auto _ : state) {
        const TransientResult tr =
            TransientAnalysis(reg.circuit, opt).run();
        benchmark::DoNotOptimize(tr.finalState);
    }
}
// Args {sensitivities, jacobianReuse}:
//   {0,0} plain transient, full Newton (legacy surface-method unit cost)
//   {0,1} plain transient, chord reuse (the new default)
//   {1,0} with sensitivities, full Newton (legacy Euler-Newton unit cost)
//   {1,1} with sensitivities, chord reuse + epilogue refactorization
// The {*,0} vs {*,1} gaps are the end-to-end reuse speedup; the {0,*} vs
// {1,*} gaps are the TRUE per-evaluation overhead of the analytic gradient.
BENCHMARK(BM_TspcTransient)
    ->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Backend kernels on the N-bit register chain (7N + 6 unknowns): the same
// mid-transient iteration matrix factored dense vs sparse (first factor and
// numeric refactor), and the scalar vs SoA-batched assembly pass. These are
// the per-iteration quantities behind the bench_sparse.json crossover and
// kSparseAutoThreshold.

// A chain advanced to the middle of the capture transient (cf.
// TspcMidTransient), sized by the benchmark argument.
struct ChainMidTransient {
    RegisterFixture reg;
    Vector x;
    double t = 5.8e-9;

    explicit ChainMidTransient(int bits) {
        RegisterChainOptions opt;
        opt.bits = bits;
        reg = buildTspcRegisterChain(opt);
        reg.data->setSkews(300e-12, 300e-12);
        TransientOptions tran;
        tran.tStop = t;
        tran.fixedSteps = 580;
        tran.storeStates = false;
        x = TransientAnalysis(reg.circuit, tran).run().finalState;
    }
};

// J = C/dt + G at the mid-transient state, in the requested backend.
SystemMatrix chainIterationMatrix(const ChainMidTransient& mid, bool sparse) {
    Assembler asmb(mid.reg.circuit.systemSize(),
                   sparse ? mid.reg.circuit.sparsityPattern() : nullptr);
    mid.reg.circuit.assemble(mid.x, mid.t, asmb);
    SystemMatrix j = asmb.cSystem();
    j *= 1.0 / 10e-12;
    j += asmb.gSystem();
    return j;
}

void BM_ChainLuFactorDense(benchmark::State& state) {
    const ChainMidTransient mid(static_cast<int>(state.range(0)));
    const SystemMatrix j = chainIterationMatrix(mid, false);
    DenseLinearSolver solver;
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.factor(j));
    }
}
BENCHMARK(BM_ChainLuFactorDense)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ChainLuFactorSparse(benchmark::State& state) {
    // Steady-state sparse factor cost: after the first call this is the
    // numeric refactor replay (exactly what the transient hot loop pays,
    // where the symbolic analysis is a one-time cost per pattern).
    const ChainMidTransient mid(static_cast<int>(state.range(0)));
    const SystemMatrix j = chainIterationMatrix(mid, true);
    SparseLinearSolver solver;
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.factor(j));
    }
}
BENCHMARK(BM_ChainLuFactorSparse)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ChainLuSolve(benchmark::State& state) {
    const bool sparse = state.range(1) != 0;
    const ChainMidTransient mid(static_cast<int>(state.range(0)));
    const SystemMatrix j = chainIterationMatrix(mid, sparse);
    const std::unique_ptr<LinearSolver> solver = makeLinearSolver(
        sparse ? LinalgBackend::Sparse : LinalgBackend::Dense);
    solver->factor(j);
    Vector rhs(j.dimension(), 1e-3);
    Vector b(j.dimension());
    for (auto _ : state) {
        b = rhs;
        solver->solveInPlace(b);
        benchmark::DoNotOptimize(b);
    }
}
// Args {bits, sparse}.
BENCHMARK(BM_ChainLuSolve)
    ->Args({16, 0})->Args({16, 1})->Args({64, 0})->Args({64, 1});

void BM_ChainAssembly(benchmark::State& state) {
    // Scalar vs SoA-batched full assembly pass (bit-identical results; the
    // gap is the AoS->SoA device-evaluation saving).
    const bool batch = state.range(1) != 0;
    const ChainMidTransient mid(static_cast<int>(state.range(0)));
    Assembler asmb(mid.reg.circuit.systemSize());
    MosfetBatchScratch scratch;
    for (auto _ : state) {
        if (batch) {
            mid.reg.circuit.assembleBatch(mid.x, mid.t, asmb, scratch);
        } else {
            mid.reg.circuit.assemble(mid.x, mid.t, asmb);
        }
        benchmark::DoNotOptimize(asmb.f());
    }
}
// Args {bits, batch}.
BENCHMARK(BM_ChainAssembly)
    ->Args({4, 0})->Args({4, 1})->Args({64, 0})->Args({64, 1});

void BM_TspcAdjointGradient(benchmark::State& state) {
    // Tape-recording transient + backward sweep: the adjoint route to the
    // same gradient (wins when the parameter count grows beyond 2).
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    TransientOptions opt;
    opt.tStop = 11.6e-9;
    opt.fixedSteps = 1160;
    opt.recordAdjointTape = true;
    opt.storeStates = false;
    const Vector sel = reg.circuit.selectorFor(reg.q);
    for (auto _ : state) {
        const TransientResult tr =
            TransientAnalysis(reg.circuit, opt).run();
        const AdjointGradient grad =
            computeAdjointGradient(reg.circuit, tr, sel);
        benchmark::DoNotOptimize(grad);
    }
}
BENCHMARK(BM_TspcAdjointGradient)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
