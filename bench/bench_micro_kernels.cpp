// MICRO -- google-benchmark micro-benchmarks of the simulator kernels that
// dominate characterization cost: dense LU factor/solve at MNA sizes,
// full-circuit assembly, one transient step, one complete h evaluation
// with and without sensitivities (the marginal cost of the analytic
// gradient is the pair of extra back-substitutions per step -- the paper's
// efficiency argument).
#include <benchmark/benchmark.h>

#include <random>

#include "shtrace/analysis/adjoint.hpp"
#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/linalg/lu.hpp"

namespace {

using namespace shtrace;

Matrix randomSystem(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            m(i, j) = dist(rng);
        }
        m(i, i) += 3.0;
    }
    return m;
}

void BM_LuFactor(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomSystem(n, 42);
    LuFactorization lu;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lu.factor(a));
    }
}
BENCHMARK(BM_LuFactor)->Arg(8)->Arg(13)->Arg(20)->Arg(40);

void BM_LuSolve(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomSystem(n, 42);
    LuFactorization lu;
    lu.factor(a);
    Vector b(n, 1.0);
    for (auto _ : state) {
        Vector x = lu.solve(b);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(13)->Arg(20)->Arg(40);

void BM_TspcAssembly(benchmark::State& state) {
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    Assembler asmb(reg.circuit.systemSize());
    Vector x(reg.circuit.systemSize(), 1.0);
    for (auto _ : state) {
        reg.circuit.assemble(x, 11.0e-9, asmb);
        benchmark::DoNotOptimize(asmb.f());
    }
}
BENCHMARK(BM_TspcAssembly);

void BM_TspcTransient(benchmark::State& state) {
    const bool sensitivities = state.range(0) != 0;
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    TransientOptions opt;
    opt.tStop = 11.6e-9;
    opt.fixedSteps = 1160;  // the default 10 ps recipe
    opt.trackSkewSensitivities = sensitivities;
    opt.storeStates = false;
    // Reuse one DC solve across iterations, as HFunction does.
    TransientOptions probe = opt;
    probe.tStop = 1e-12;
    probe.fixedSteps = 1;
    for (auto _ : state) {
        const TransientResult tr =
            TransientAnalysis(reg.circuit, opt).run();
        benchmark::DoNotOptimize(tr.finalState);
    }
}
// Arg 0: plain transient (surface-method unit cost).
// Arg 1: with sensitivities (Euler-Newton unit cost). The ratio of these
// two is the TRUE per-evaluation overhead of the analytic gradient.
BENCHMARK(BM_TspcTransient)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TspcAdjointGradient(benchmark::State& state) {
    // Tape-recording transient + backward sweep: the adjoint route to the
    // same gradient (wins when the parameter count grows beyond 2).
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    TransientOptions opt;
    opt.tStop = 11.6e-9;
    opt.fixedSteps = 1160;
    opt.recordAdjointTape = true;
    opt.storeStates = false;
    const Vector sel = reg.circuit.selectorFor(reg.q);
    for (auto _ : state) {
        const TransientResult tr =
            TransientAnalysis(reg.circuit, opt).run();
        const AdjointGradient grad =
            computeAdjointGradient(reg.circuit, tr, sel);
        benchmark::DoNotOptimize(grad);
    }
}
BENCHMARK(BM_TspcAdjointGradient)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
