// FIG12 -- reproduces paper Fig. 12(a): the C2MOS constant clock-to-Q
// contour with the 90% criterion (the clk/clk-bar overlap causes false
// partial transitions, Fig. 11(b), so the 50% criterion is unusable), plus
// the overlay verification of Fig. 12(b) against the brute-force surface.
//
// Paper reference values: r = 0.25 V (high->low data), t_c = 12.055 ns,
// t_f = 12.155 ns; contour spans setup ~350-500 ps, hold ~200-300 ps.
#include "bench_common.hpp"

#include <chrono>

#include "shtrace/measure/contour.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("FIG12", "C2MOS contour (90% criterion) + surface overlay");

    ObsBenchScope obsScope;

    const RegisterFixture reg = buildC2mosRegister();
    CharacterizeOptions opt;
    opt.criterion = c2mosCriterion();
    opt.tracer.maxPoints = 40;
    opt.tracer.bounds = c2mosWindow();
    opt.tracer.stepLength = 8e-12;
    opt.tracer.maxStepLength = 30e-12;

    const auto wallStart = std::chrono::steady_clock::now();
    const CharacterizeResult result = characterizeInterdependent(reg, opt);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wallStart)
                            .count();
    if (!result.success) {
        std::cerr << "characterization failed\n";
        return 1;
    }
    std::cout << "paper:  t_c = 12.055ns, t_f = 12.155ns, r = 0.25 V\n";
    std::cout << "ours:   t_c = "
              << ps(11.05e-9 + result.characteristicClockToQ)
              << ", t_f = " << ps(result.tf) << ", r = " << result.r
              << " V\n\n";

    TablePrinter table({"#", "setup skew", "hold skew", "|h| (V)"});
    CsvWriter csv("fig12_c2mos_contour.csv");
    csv.writeHeader({"setup_skew_s", "hold_skew_s", "abs_h"});
    for (std::size_t i = 0; i < result.contour.points.size(); ++i) {
        const SkewPoint& p = result.contour.points[i];
        table.addRowValues(static_cast<int>(i), ps(p.setup), ps(p.hold),
                           result.contour.residuals[i]);
        csv.writeRow({p.setup, p.hold, result.contour.residuals[i]});
    }
    table.print(std::cout);

    // Overlay verification (Fig. 12(b)) on a moderate surface grid.
    const CharacterizationProblem problem(reg, opt.criterion);
    const auto surfOpt = surfaceOptionsFor(opt.tracer.bounds, 21);
    const SurfaceMethodResult surface =
        runSurfaceMethod(problem.h(), surfOpt);
    const double dev = maxDeviation(result.contour.points, surface.contours);
    const double cell =
        (surfOpt.setupMax - surfOpt.setupMin) / (surfOpt.setupPoints - 1);
    std::cout << "\noverlay: max deviation from surface contour = " << ps(dev)
              << " (grid cell = " << ps(cell) << ") -> "
              << (dev < cell ? "MATCH" : "MISMATCH") << "\n";
    std::cout << "cost (tracer): " << result.stats << "\n";
    std::cout << "CSV written: fig12_c2mos_contour.csv\n";
    writeObsBenchReport("fig12_c2mos_contour", result.stats, wall,
                        "contour_points", result.contour.points.size());
    return dev < cell ? 0 : 1;
}
