// FIG9_10 -- reproduces paper Figs. 9-10: the TSPC output surface at t_f
// (Fig. 9) and the overlay verification (Fig. 10) that the Euler-Newton
// contour exactly matches the intersection of the plane at height r with
// that surface. The quantitative criterion: every traced point within one
// surface grid cell of the marching-squares contour.
#include "bench_common.hpp"

#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/measure/contour.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("FIG9_10", "TSPC surface at t_f + Euler-Newton overlay");

    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg, tspcCriterion());
    printCriterion(problem);

    // Fig. 9 surface (40x40 as in the paper's brute-force run).
    SimStats surfaceStats;
    const auto surfOpt = surfaceOptionsFor(tspcWindow(), 40);
    const SurfaceMethodResult surface =
        runSurfaceMethod(problem.h(), surfOpt, &surfaceStats);
    surface.surface.writeCsv("fig9_surface.csv");

    // Euler-Newton contour over the same window.
    SimStats tracerStats;
    TracerOptions tracerOpt;
    tracerOpt.bounds = tspcWindow();
    tracerOpt.maxPoints = 40;
    tracerOpt.stepLength = 8e-12;
    tracerOpt.maxStepLength = 30e-12;
    const SeedResult seedResult =
        findSeedPoint(problem.h(), problem.passSign(), {}, &tracerStats);
    if (!seedResult.found) {
        std::cerr << "seed search failed\n";
        return 1;
    }
    SkewPoint seed = seedResult.seed;
    seed.hold = tspcWindow().holdMax;
    const TracedContour traced =
        traceContour(problem.h(), seed, tracerOpt, &tracerStats);
    if (!traced.seedConverged || traced.points.empty()) {
        std::cerr << "tracer failed\n";
        return 1;
    }

    const double dev = maxDeviation(traced.points, surface.contours);
    const double cell =
        (surfOpt.setupMax - surfOpt.setupMin) / (surfOpt.setupPoints - 1);
    TablePrinter table({"quantity", "value"});
    table.addRowValues("surface transients", surface.transientCount);
    table.addRowValues("traced points",
                       static_cast<int>(traced.points.size()));
    table.addRowValues("tracer transients",
                       static_cast<unsigned long long>(
                           tracerStats.hEvaluations));
    table.addRowValues("max overlay deviation", ps(dev));
    table.addRowValues("surface grid cell", ps(cell));
    table.addRowValues("overlay verdict", dev < cell ? "MATCH" : "MISMATCH");
    table.print(std::cout);

    CsvWriter csv("fig10_overlay.csv");
    csv.writeHeader({"source", "setup_skew_s", "hold_skew_s"});
    for (const auto& poly : surface.contours) {
        for (const SkewPoint& p : poly) {
            csv.writeRow({0.0, p.setup, p.hold});
        }
    }
    for (const SkewPoint& p : traced.points) {
        csv.writeRow({1.0, p.setup, p.hold});
    }
    std::cout << "CSV written: fig9_surface.csv, fig10_overlay.csv "
                 "(source 0 = surface contour, 1 = Euler-Newton)\n";
    return dev < cell ? 0 : 1;
}
