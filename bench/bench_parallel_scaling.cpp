// PARALLEL SCALING -- wall-clock scaling of the batch characterization
// engine over worker threads. The paper's economic argument is that
// characterization "typically takes weeks or months" because every
// register of every library runs at every PVT corner -- an embarrassingly
// parallel batch. This bench runs the library-flow workload at 1/2/4/8
// threads, verifies the rows are byte-identical at every thread count
// (the engine's determinism guarantee), and writes parallel_scaling.csv
// (kept under results/ in the repo) so the perf trajectory is tracked
// from PR to PR.
//
// Usage: bench_parallel_scaling [output.csv]   (default parallel_scaling.csv)
#include "bench_common.hpp"

#include <thread>
#include <vector>

#include "shtrace/chz/library.hpp"
#include "shtrace/util/error.hpp"

int main(int argc, char** argv) {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("PARALLEL-SCALING",
                "library-flow wall clock vs worker threads");
    std::cout << "hardware concurrency: "
              << std::thread::hardware_concurrency() << "\n";

    ObsBenchScope obsScope;

    // Eight TSPC drive strengths: comparable per-cell cost, so static or
    // dynamic scheduling both balance and the speedup ceiling is the
    // thread count, not job skew.
    const auto tspcAt = [](double load) {
        return [load] {
            TspcOptions opt;
            opt.outputLoadCapacitance = load;
            return buildTspcRegister(opt);
        };
    };
    std::vector<LibraryCell> cells;
    for (int i = 0; i < 8; ++i) {
        cells.push_back(LibraryCell{message("TSPC_X", i + 1),
                                    tspcAt(15e-15 + 10e-15 * i),
                                    CriterionOptions{}});
    }

    const auto configAt = [](int threads) {
        RunConfig cfg = RunConfig::defaults().withThreads(threads);
        cfg.tracer.maxPoints = 8;
        cfg.tracer.bounds = SkewBounds{80e-12, 900e-12, 40e-12, 700e-12};
        return cfg;
    };

    TablePrinter table({"threads", "wall (s)", "speedup", "efficiency",
                        "transients", "deterministic"});
    CsvWriter csv(argc > 1 ? argv[1] : "parallel_scaling.csv");
    csv.writeHeader({"threads", "wall_s", "speedup", "efficiency",
                     "transients", "deterministic"});

    LibraryResult reference;
    double wallAt1 = 0.0;
    double speedupAt4 = 0.0;
    bool allDeterministic = true;
    SimStats totalStats;
    double totalWall = 0.0;
    std::size_t totalRows = 0;
    for (const int threads : {1, 2, 4, 8}) {
        SimStats timer;
        LibraryResult result;
        {
            ScopedTimer scope(&timer);
            result = characterizeLibrary(cells, configAt(threads));
        }
        const double wall = timer.wallSeconds;
        totalStats.merge(result.stats);
        totalWall += wall;
        totalRows += result.size();
        if (threads == 1) {
            reference = result;
            wallAt1 = wall;
        }
        bool deterministic = result.size() == reference.size();
        for (std::size_t i = 0; deterministic && i < result.size(); ++i) {
            deterministic = result[i].success == reference[i].success &&
                            result[i].setupTime == reference[i].setupTime &&
                            result[i].holdTime == reference[i].holdTime &&
                            result[i].contour.size() ==
                                reference[i].contour.size() &&
                            result[i].stats.transientSolves ==
                                reference[i].stats.transientSolves;
        }
        allDeterministic = allDeterministic && deterministic;
        const double speedup = wall > 0.0 ? wallAt1 / wall : 0.0;
        const double efficiency = speedup / threads;
        if (threads == 4) {
            speedupAt4 = speedup;
        }
        table.addRowValues(threads, wall, speedup, efficiency,
                           static_cast<unsigned long long>(
                               result.stats.transientSolves),
                           deterministic ? "YES" : "NO");
        csv.writeRow({static_cast<double>(threads), wall, speedup,
                      efficiency,
                      static_cast<double>(result.stats.transientSolves),
                      deterministic ? 1.0 : 0.0});
    }
    table.print(std::cout);

    std::cout << "\nspeedup at 4 threads: " << speedupAt4
              << "x (target >= 2.5x on >= 4 physical cores)\n"
              << "rows byte-identical across thread counts: "
              << (allDeterministic ? "YES" : "NO") << "\n";
    // Op counts and wall time summed over all four thread-count runs;
    // histograms accumulate across them in the shared registry.
    writeObsBenchReport("parallel_scaling", totalStats, totalWall,
                        "library_rows", totalRows);
    // Exit gates on determinism only: the speedup target depends on the
    // physical core count of the machine running the bench.
    return allDeterministic ? 0 : 1;
}
