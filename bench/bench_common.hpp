// Shared helpers for the experiment benches. Each bench binary regenerates
// one figure/claim of the paper (see DESIGN.md experiment index); this
// header centralizes the register/problem setup so every bench runs the
// same configuration the tests validated.
#pragma once

#include <iostream>
#include <string>

#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/surface_method.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

namespace shtrace::bench {

/// The TSPC configuration of Section IV-A (50% criterion).
inline CriterionOptions tspcCriterion() {
    return CriterionOptions{};  // 50%, 10% degradation
}

/// The C2MOS configuration of Section IV-B (90% criterion).
inline CriterionOptions c2mosCriterion() {
    CriterionOptions crit;
    crit.transitionFraction = 0.9;
    return crit;
}

/// Skew window containing the interesting part of the TSPC contour.
inline SkewBounds tspcWindow() {
    return SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
}

/// Skew window for the C2MOS contour (larger setup/hold, per Fig. 12).
inline SkewBounds c2mosWindow() {
    return SkewBounds{250e-12, 800e-12, 100e-12, 600e-12};
}

inline SurfaceMethodOptions surfaceOptionsFor(const SkewBounds& b, int n) {
    SurfaceMethodOptions opt;
    opt.setupPoints = n;
    opt.holdPoints = n;
    opt.setupMin = b.setupMin;
    opt.setupMax = b.setupMax;
    opt.holdMin = b.holdMin;
    opt.holdMax = b.holdMax;
    return opt;
}

inline std::string ps(double seconds) {
    return formatEngineering(seconds, "s");
}

inline void printHeader(const std::string& id, const std::string& title) {
    std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void printCriterion(const CharacterizationProblem& problem) {
    std::cout << "characteristic clock-to-Q = "
              << ps(problem.characteristicClockToQ())
              << ", 10% degraded = " << ps(problem.degradedClockToQ())
              << ", t_f = " << ps(problem.tf()) << ", r = " << problem.r()
              << " V\n";
}

}  // namespace shtrace::bench
