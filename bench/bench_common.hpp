// Shared helpers for the experiment benches. Each bench binary regenerates
// one figure/claim of the paper (see DESIGN.md experiment index); this
// header centralizes the register/problem setup so every bench runs the
// same configuration the tests validated.
#pragma once

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/surface_method.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/stats.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

namespace shtrace::bench {

/// The TSPC configuration of Section IV-A (50% criterion).
inline CriterionOptions tspcCriterion() {
    return CriterionOptions{};  // 50%, 10% degradation
}

/// The C2MOS configuration of Section IV-B (90% criterion).
inline CriterionOptions c2mosCriterion() {
    CriterionOptions crit;
    crit.transitionFraction = 0.9;
    return crit;
}

/// Skew window containing the interesting part of the TSPC contour.
inline SkewBounds tspcWindow() {
    return SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
}

/// Skew window for the C2MOS contour (larger setup/hold, per Fig. 12).
inline SkewBounds c2mosWindow() {
    return SkewBounds{250e-12, 800e-12, 100e-12, 600e-12};
}

inline SurfaceMethodOptions surfaceOptionsFor(const SkewBounds& b, int n) {
    SurfaceMethodOptions opt;
    opt.setupPoints = n;
    opt.holdPoints = n;
    opt.setupMin = b.setupMin;
    opt.setupMax = b.setupMax;
    opt.holdMin = b.holdMin;
    opt.holdMax = b.holdMax;
    return opt;
}

inline std::string ps(double seconds) {
    return formatEngineering(seconds, "s");
}

inline void printHeader(const std::string& id, const std::string& title) {
    std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void printCriterion(const CharacterizationProblem& problem) {
    std::cout << "characteristic clock-to-Q = "
              << ps(problem.characteristicClockToQ())
              << ", 10% degraded = " << ps(problem.degradedClockToQ())
              << ", t_f = " << ps(problem.tf()) << ", r = " << problem.r()
              << " V\n";
}

// ------------------------------------------------ bench_obs.json reporting
//
// Every experiment bench contributes one fragment to results/bench_obs.json:
// machine-readable op counts, wall time, and histogram summaries, so the
// BENCH trajectory is tracked from PR to PR alongside the figure CSVs.
// Benches run from results/ (CsvWriter paths are cwd-relative), so the
// fragments land in ./bench_obs/<bench>.json and the merged report in
// ./bench_obs.json.

/// Enables Coarse instrumentation for the duration of a bench so its
/// fragment carries histogram summaries, and restores the prior detail
/// level on destruction. Instrumentation never touches numerics, contour
/// output, or CSV bytes -- only the metrics/span side channel.
class ObsBenchScope {
public:
    ObsBenchScope() : previous_(obs::detailLevel()) {
        obs::clearAll();
        obs::setDetail(obs::Detail::Coarse);
    }
    ~ObsBenchScope() {
        obs::setDetail(static_cast<obs::Detail>(previous_));
    }
    ObsBenchScope(const ObsBenchScope&) = delete;
    ObsBenchScope& operator=(const ObsBenchScope&) = delete;

private:
    int previous_;
};

/// Writes this bench's fragment (op counts + wall time + histogram
/// summaries) and regenerates the merged bench_obs.json from every
/// fragment present. `publishCounters` is false when a driver-side
/// RunObservation already published the run's SimStats into the registry
/// (the --obs modes), so counters are not double-counted.
inline void writeObsBenchReport(const std::string& bench,
                                const SimStats& stats, double wallSeconds,
                                const std::string& unitName,
                                std::size_t unitCount,
                                bool publishCounters = true) {
    namespace fs = std::filesystem;
    if (publishCounters) {
        obs::addRunCounters(stats);
    }
    std::string metrics = obs::metricsJson(obs::metricsSnapshot());
    while (!metrics.empty() && metrics.back() == '\n') {
        metrics.pop_back();
    }

    std::ostringstream frag;
    frag.precision(17);
    frag << "{\n\"bench\": \"" << bench << "\",\n\"wall_seconds\": "
         << wallSeconds << ",\n\"" << unitName << "\": " << unitCount
         << ",\n\"metrics\": " << metrics << "\n}";

    fs::create_directories("bench_obs");
    {
        std::ofstream out("bench_obs/" + bench + ".json",
                          std::ios::binary | std::ios::trunc);
        out << frag.str() << "\n";
    }

    // Regenerate the merged report from whatever fragments exist, sorted by
    // name so the output is stable regardless of which bench ran last.
    std::vector<std::pair<std::string, std::string>> fragments;
    for (const fs::directory_entry& entry :
         fs::directory_iterator("bench_obs")) {
        if (entry.path().extension() != ".json") {
            continue;
        }
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        std::string text = body.str();
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r')) {
            text.pop_back();
        }
        fragments.emplace_back(entry.path().stem().string(),
                               std::move(text));
    }
    std::sort(fragments.begin(), fragments.end());
    std::ofstream merged("bench_obs.json",
                         std::ios::binary | std::ios::trunc);
    merged << "{\n";
    for (std::size_t i = 0; i < fragments.size(); ++i) {
        merged << "\"" << fragments[i].first << "\": "
               << fragments[i].second << (i + 1 < fragments.size() ? ",\n"
                                                                   : "\n");
    }
    merged << "}\n";
    std::cout << "obs report written: bench_obs.json (fragment bench_obs/"
              << bench << ".json)\n";
}

}  // namespace shtrace::bench
