// STA -- the SHIA-STA engine over the shipped benchmark netlists. Runs
// the contour-aware analysis on pipeline4 / chain8 / diamond twice
// against one persistent store (cold, then warm) and writes
// results/bench_sta.json.
//
// The exit code enforces the acceptance triplet:
//   1. RECOVERY: at least one endpoint a classical knee check flags as a
//      hold violation passes the contour check with positive hold slack;
//   2. NO FALSE ADMITS: every endpoint the contour admits also passes a
//      transistor-level oracle -- h evaluated at the endpoint's budget
//      (clamped DOWN into the cell's characterization window, which is
//      conservative) must sit on the passing side;
//   3. WARM STORE: the rerun completes every characterization request
//      from the store -- zero fresh transient solves.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "shtrace/chz/problem.hpp"
#include "shtrace/sta/engine.hpp"

#ifndef SHTRACE_NETLIST_DIR
#error "SHTRACE_NETLIST_DIR must point at the shipped netlists"
#endif

namespace {

using namespace shtrace;

struct DesignRun {
    std::string name;
    sta::StaReport cold;
    sta::StaReport warm;
};

std::string jsonEscape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
        }
        out.push_back(c);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace shtrace::bench;
    const std::string outPath =
        argc > 1 ? argv[1] : "results/bench_sta.json";
    printHeader("STA", "contour-aware slack over the benchmark netlists");
    ObsBenchScope obsScope;
    const auto benchStart = std::chrono::steady_clock::now();
    SimStats totalStats;

    const std::filesystem::path storeDir =
        std::filesystem::temp_directory_path() / "shtrace_bench_sta_store";
    std::filesystem::remove_all(storeDir);

    RunConfig config = RunConfig::defaults().withThreads(0);
    config.tracer.maxPoints = 24;
    config.cacheDir = storeDir.string();

    const std::vector<sta::StaCell> library = sta::builtinStaCells();
    const std::vector<std::string> designs = {"pipeline4", "chain8",
                                              "diamond"};
    std::vector<DesignRun> runs;
    for (const std::string& name : designs) {
        const std::string path =
            std::string(SHTRACE_NETLIST_DIR) + "/" + name + ".stanet";
        DesignRun run;
        run.name = name;
        const sta::Design design = sta::loadDesign(path);

        const auto t0 = std::chrono::steady_clock::now();
        run.cold = sta::analyzeDesign(design, library, config);
        const double coldWall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
        if (!run.cold.success) {
            std::cerr << name << " (cold): " << run.cold.failureReason
                      << "\n";
            return 1;
        }
        const auto t1 = std::chrono::steady_clock::now();
        run.warm = sta::analyzeDesign(design, library, config);
        const double warmWall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t1)
                                    .count();
        if (!run.warm.success) {
            std::cerr << name << " (warm): " << run.warm.failureReason
                      << "\n";
            return 1;
        }
        std::cout << name << ": " << run.cold.endpoints.size()
                  << " endpoints; cold " << run.cold.stats.transientSolves
                  << " transients / " << run.cold.stats.cacheMisses
                  << " misses / " << run.cold.stats.cacheHits
                  << " hits in " << ps(coldWall) << "; warm "
                  << run.warm.stats.transientSolves << " transients / "
                  << run.warm.stats.cacheHits << " hits in "
                  << ps(warmWall) << "\n";
        totalStats.merge(run.cold.stats);
        totalStats.merge(run.warm.stats);
        runs.push_back(std::move(run));
    }
    std::cout << "\n";

    // --- acceptance 1: at least one recovered endpoint, positive slack --
    std::size_t recovered = 0;
    std::size_t recoveredPositive = 0;
    for (const DesignRun& run : runs) {
        for (const sta::EndpointCheck& ep : run.cold.endpoints) {
            if (!ep.recovered) {
                continue;
            }
            ++recovered;
            recoveredPositive += ep.shiaFeasible && ep.shiaHoldSlack > 0.0;
            std::cout << "recovered: " << run.name << "/" << ep.reg
                      << " classical hold slack "
                      << ps(ep.classicalHoldSlack) << " -> SHIA hold slack "
                      << ps(ep.shiaHoldSlack) << "\n";
        }
    }
    const bool recoveryOk = recovered >= 1 && recoveredPositive == recovered;

    // --- acceptance 2: transistor-level oracle on every SHIA pass ------
    // One CharacterizationProblem per cell; budgets clamped down into the
    // cell's window (conservative: h is monotone in both margins, so a
    // pass at the clamped budget implies a pass at the true one).
    // Identical (cell, budget) endpoints -- e.g. the chain8 stages --
    // share one evaluation.
    std::size_t oracleChecks = 0;
    std::size_t falseAdmits = 0;
    SimStats oracleStats;
    {
        std::map<std::string, std::unique_ptr<CharacterizationProblem>>
            problems;
        std::map<std::string, RegisterFixture> fixtures;
        std::set<std::string> evaluated;
        for (const DesignRun& run : runs) {
            for (const sta::EndpointCheck& ep : run.cold.endpoints) {
                if (!ep.shiaOk) {
                    continue;
                }
                const auto cellIt = std::find_if(
                    library.begin(), library.end(),
                    [&](const sta::StaCell& c) { return c.name == ep.cell; });
                const SkewBounds& w = cellIt->window;
                const double s = std::min(ep.availSetup, w.setupMax);
                const double h = std::min(ep.availHold, w.holdMax);
                // Femtosecond-rounded key: std::to_string on a
                // seconds-scale double collapses everything to 0.000000.
                const std::string key =
                    ep.cell + ":" + std::to_string(llround(s * 1e15)) +
                    ":" + std::to_string(llround(h * 1e15));
                if (!evaluated.insert(key).second) {
                    continue;
                }
                if (problems.count(ep.cell) == 0) {
                    fixtures.emplace(ep.cell, cellIt->build());
                    problems.emplace(
                        ep.cell,
                        std::make_unique<CharacterizationProblem>(
                            fixtures.at(ep.cell), cellIt->criterion,
                            config.recipe, &oracleStats));
                }
                const CharacterizationProblem& problem =
                    *problems.at(ep.cell);
                const HEvaluation eval = problem.h().evaluateValueOnly(
                    s, h, &oracleStats);
                ++oracleChecks;
                const bool pass =
                    eval.success && problem.passSign() * eval.h >= 0.0;
                if (!pass) {
                    ++falseAdmits;
                    std::cerr << "FALSE ADMIT: " << run.name << "/"
                              << ep.reg << " budget (" << ps(s) << ", "
                              << ps(h) << ") fails the oracle (h = "
                              << eval.h << ")\n";
                }
            }
        }
    }
    std::cout << "oracle: " << oracleChecks
              << " distinct admitted budgets checked, " << falseAdmits
              << " false admits (" << oracleStats.transientSolves
              << " transients)\n";
    const bool oracleOk = falseAdmits == 0 && oracleChecks > 0;

    // --- acceptance 3: warm reruns never touch the simulator -----------
    std::uint64_t warmTransients = 0;
    std::uint64_t warmHits = 0;
    std::size_t registerRequests = 0;
    for (const DesignRun& run : runs) {
        warmTransients += run.warm.stats.transientSolves;
        warmHits += run.warm.stats.cacheHits;
        registerRequests += run.warm.endpoints.size();
    }
    const bool warmOk =
        warmTransients == 0 && warmHits == registerRequests;
    std::cout << "warm store: " << warmTransients << " transients, "
              << warmHits << " hits for " << registerRequests
              << " register requests\n\n";

    // --- report ---------------------------------------------------------
    std::filesystem::create_directories(
        std::filesystem::path(outPath).parent_path());
    std::ofstream out(outPath, std::ios::trunc);
    out << "{\n  \"bench\": \"sta\",\n  \"designs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const DesignRun& run = runs[i];
        out << "    {\n      \"name\": \"" << jsonEscape(run.name)
            << "\",\n      \"endpoints\": [\n";
        for (std::size_t j = 0; j < run.cold.endpoints.size(); ++j) {
            const sta::EndpointCheck& ep = run.cold.endpoints[j];
            out << "        {\"reg\": \"" << jsonEscape(ep.reg)
                << "\", \"cell\": \"" << jsonEscape(ep.cell)
                << "\", \"availSetup\": " << ep.availSetup
                << ", \"availHold\": " << ep.availHold
                << ", \"classicalHoldSlack\": " << ep.classicalHoldSlack
                << ", \"classicalOk\": "
                << ((ep.classicalSetupOk && ep.classicalHoldOk) ? "true"
                                                                : "false")
                << ", \"shiaOk\": " << (ep.shiaOk ? "true" : "false")
                << ", \"shiaHoldSlack\": "
                << (ep.shiaFeasible ? ep.shiaHoldSlack
                                    : -std::numeric_limits<double>::max())
                << ", \"recovered\": " << (ep.recovered ? "true" : "false")
                << "}" << (j + 1 < run.cold.endpoints.size() ? "," : "")
                << "\n";
        }
        out << "      ],\n";
        out << "      \"coldTransients\": " << run.cold.stats.transientSolves
            << ",\n      \"coldMisses\": " << run.cold.stats.cacheMisses
            << ",\n      \"coldHits\": " << run.cold.stats.cacheHits
            << ",\n      \"warmTransients\": "
            << run.warm.stats.transientSolves
            << ",\n      \"warmHits\": " << run.warm.stats.cacheHits
            << ",\n      \"classicalHoldViolations\": "
            << run.cold.classicalHoldViolations
            << ",\n      \"shiaViolations\": " << run.cold.shiaViolations
            << ",\n      \"recoveredEndpoints\": "
            << run.cold.recoveredEndpoints << "\n    }"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"recoveredEndpoints\": " << recovered << ",\n";
    out << "  \"oracleChecks\": " << oracleChecks << ",\n";
    out << "  \"falseAdmits\": " << falseAdmits << ",\n";
    out << "  \"warmTransients\": " << warmTransients << ",\n";
    out << "  \"acceptance\": {\"recovery\": "
        << (recoveryOk ? "true" : "false")
        << ", \"noFalseAdmits\": " << (oracleOk ? "true" : "false")
        << ", \"warmStore\": " << (warmOk ? "true" : "false") << "}\n";
    out << "}\n";
    out.close();
    std::cout << "report written: " << outPath << "\n";

    totalStats.merge(oracleStats);
    const double benchWall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      benchStart)
            .count();
    writeObsBenchReport("sta", totalStats, benchWall, "endpoints",
                        registerRequests);

    std::filesystem::remove_all(storeDir);
    if (!recoveryOk) {
        std::cerr << "ACCEPTANCE FAILED: no recovered endpoint with "
                     "positive SHIA slack\n";
    }
    if (!oracleOk) {
        std::cerr << "ACCEPTANCE FAILED: the contour admitted an endpoint "
                     "the oracle rejects\n";
    }
    if (!warmOk) {
        std::cerr << "ACCEPTANCE FAILED: warm rerun was not free\n";
    }
    return (recoveryOk && oracleOk && warmOk) ? 0 : 1;
}
