// EXT2 -- statistical characterization (extension): Monte Carlo process
// samples on the TSPC register, reporting the setup/hold/clock-to-Q
// distributions. This is the "statistical process samples" workload from
// the paper's cost analysis; the per-sample cost is small because each
// sample uses the sensitivity-driven scalar Newton (Section IIIB), not
// bisection.
#include "bench_common.hpp"

#include <optional>

#include "shtrace/chz/monte_carlo.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("EXT2", "Monte Carlo statistical setup/hold on TSPC");

    MonteCarloOptions opt;
    opt.samples = 30;
    opt.variation.vtSigma = 0.02;
    opt.variation.kpRelSigma = 0.05;
    opt.variation.vddRelSigma = 0.01;

    SimStats stats;
    std::optional<MonteCarloResult> mcHolder;
    {
        ScopedTimer timer(&stats);
        mcHolder = runMonteCarlo(
        ProcessCorner::typical(),
        [](const ProcessCorner& corner) {
            TspcOptions cellOpt;
            cellOpt.corner = corner;
            return buildTspcRegister(cellOpt);
        },
        opt, &stats);
    }
    const MonteCarloResult& mc = *mcHolder;

    std::cout << "samples: " << mc.samplesConverged << "/"
              << mc.samplesRequested << " converged\n\n";
    TablePrinter table({"quantity", "mean", "sigma", "min", "max"});
    const auto row = [&](const char* name, const SampleStatistics& s) {
        table.addRowValues(name, ps(s.mean), ps(s.stddev), ps(s.min),
                           ps(s.max));
    };
    row("setup time", mc.setup);
    row("hold time", mc.hold);
    row("clock-to-Q", mc.clockToQ);
    table.print(std::cout);

    CsvWriter csv("monte_carlo.csv");
    csv.writeHeader({"setup_s", "hold_s", "clock_to_q_s"});
    for (std::size_t i = 0; i < mc.setupTimes.size(); ++i) {
        csv.writeRow({mc.setupTimes[i], mc.holdTimes[i], mc.clockToQs[i]});
    }
    std::cout << "\ncost: " << stats << "\n";
    std::cout << "CSV written: monte_carlo.csv\n";
    return mc.samplesConverged >= mc.samplesRequested - 2 ? 0 : 1;
}
