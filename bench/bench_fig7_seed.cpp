// FIG7 -- reproduces paper Fig. 7: seeding the first curve point. With the
// hold skew pinned very large, bracket the setup time between latch-pass
// and latch-fail, shrink by coarse bisection to within the MPNR
// convergence range, then demonstrate that MPNR converges from anywhere in
// the final bracket (the "convergence region" of Fig. 7(b)).
#include "bench_common.hpp"

#include "shtrace/chz/mpnr.hpp"
#include "shtrace/chz/seed.hpp"

int main() {
    using namespace shtrace;
    using namespace shtrace::bench;

    printHeader("FIG7", "seed bracketing and the MPNR convergence region");

    const RegisterFixture reg = buildTspcRegister();
    SimStats stats;
    const CharacterizationProblem problem(reg, tspcCriterion(), {}, &stats);
    printCriterion(problem);

    const SeedResult seed =
        findSeedPoint(problem.h(), problem.passSign(), {}, &stats);
    if (!seed.found) {
        std::cerr << "seed search failed\n";
        return 1;
    }
    std::cout << "bracket after coarse bisection: ["
              << ps(seed.bracketLo) << " (fail), " << ps(seed.bracketHi)
              << " (pass)], width " << ps(seed.bracketHi - seed.bracketLo)
              << ", " << seed.evaluations << " transients\n\n";

    // Convergence region: launch MPNR from guesses across and beyond the
    // bracket; report where it converges and to what.
    TablePrinter table({"initial setup guess", "converged", "iters",
                        "final setup", "final hold"});
    const double center = seed.seed.setup;
    for (double offset : {-80e-12, -40e-12, -10e-12, 0.0, 10e-12, 40e-12,
                          80e-12, 160e-12}) {
        const SkewPoint guess{center + offset, seed.seed.hold};
        const MpnrResult r = solveMpnr(problem.h(), guess, {}, &stats);
        table.addRowValues(ps(guess.setup), r.converged ? "yes" : "no",
                           r.iterations,
                           r.converged ? ps(r.point.setup) : "-",
                           r.converged ? ps(r.point.hold) : "-");
    }
    table.print(std::cout);
    std::cout << "\ncost: " << stats << "\n";
    return 0;
}
