// pvt_corners -- characterize a register across process/voltage/temperature
// corners, the workload the paper's introduction motivates ("setup/hold
// times need to be characterized ... for all PVT corners").
//
// Uses the fast independent characterization (sensitivity-driven scalar
// Newton, Section IIIB) per corner plus the characteristic clock-to-Q.
#include <iostream>
#include <vector>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/pvt.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

int main() {
    using namespace shtrace;

    // Three process corners, each at two temperatures.
    std::vector<ProcessCorner> corners;
    for (const ProcessCorner& base :
         {ProcessCorner::typical(), ProcessCorner::fast(),
          ProcessCorner::slow()}) {
        corners.push_back(base.atTemperature(27.0));
        corners.push_back(base.atTemperature(125.0));
    }

    std::cout << "PVT sweep of the TSPC register (independent setup/hold "
                 "via scalar Newton)\n";
    // Corners are independent jobs: run them on every hardware thread via
    // the unified RunConfig API; the merged cost rides in the result.
    const auto rows = sweepPvtCorners(
        corners,
        [](const ProcessCorner& corner) {
            TspcOptions opt;
            opt.corner = corner;
            return buildTspcRegister(opt);
        },
        RunConfig::defaults().withThreads(0));

    TablePrinter table({"corner", "clock-to-Q", "setup time", "hold time",
                        "transients", "wall"});
    for (const auto& row : rows) {
        if (!row.success) {
            table.addRowValues(row.corner, "FAILED", "-", "-", 0,
                               formatEngineering(row.stats.wallSeconds, "s"));
            continue;
        }
        table.addRowValues(row.corner,
                           formatEngineering(row.characteristicClockToQ, "s"),
                           formatEngineering(row.setupTime, "s"),
                           formatEngineering(row.holdTime, "s"),
                           row.transientCount,
                           formatEngineering(row.stats.wallSeconds, "s"));
    }
    table.print(std::cout);
    std::cout << "\ntotal cost: " << rows.stats << "\n";
    std::cout << "Slow/hot corners show larger clock-to-Q and larger "
                 "setup/hold times; the\nper-corner cost is a handful of "
                 "transients thanks to the Newton method.\n";
    return 0;
}
