// analog_analyses -- the simulator substrate beyond transient: AC
// small-signal analysis (Bode response of an RC filter and of a
// common-source MOSFET amplifier) and periodic steady state via shooting
// Newton (Aprille-Trick, the paper's reference [7], on a diode rectifier).
#include <iostream>
#include <memory>

#include "shtrace/analysis/ac.hpp"
#include "shtrace/analysis/shooting.hpp"
#include "shtrace/cells/mos_library.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/diode.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"
#include "shtrace/waveform/analog_sources.hpp"

using namespace shtrace;

namespace {

void bodeOfCommonSource() {
    std::cout << "== AC: common-source amplifier Bode response ==\n";
    const ProcessCorner corner = ProcessCorner::typical();
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("Vdd", vdd, kGround, corner.vdd);
    auto& vin = ckt.add<VoltageSource>("Vin", in, kGround, 0.8);
    vin.setAcMagnitude(1.0);
    ckt.add<Mosfet>("M1", out, in, kGround, kGround,
                    makeNmos(corner, 2e-6, 0.25e-6));
    ckt.add<Resistor>("RL", vdd, out, 30e3);
    ckt.add<Capacitor>("CL", out, kGround, 50e-15);  // load pole
    ckt.finalize();

    AcOptions opt;
    opt.frequencies = logSweep(1e6, 10e9, 2);
    const AcResult ac = runAcAnalysis(ckt, opt);
    const auto mag = ac.magnitudeDb(out);
    const auto phase = ac.phaseDegrees(out);
    TablePrinter table({"freq", "gain (dB)", "phase (deg)"});
    for (std::size_t i = 0; i < ac.frequencies.size(); ++i) {
        table.addRowValues(formatEngineering(ac.frequencies[i], "Hz"),
                           mag[i], phase[i]);
    }
    table.print(std::cout);
    CsvWriter csv("cs_amp_bode.csv");
    csv.writeHeader({"freq_hz", "gain_db", "phase_deg"});
    for (std::size_t i = 0; i < ac.frequencies.size(); ++i) {
        csv.writeRow({ac.frequencies[i], mag[i], phase[i]});
    }
    std::cout << "CSV written: cs_amp_bode.csv\n\n";
}

void rectifierSteadyState() {
    std::cout << "== PSS: diode rectifier by shooting Newton ==\n";
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    SineWaveform::Spec sine;
    sine.amplitude = 3.0;
    sine.frequency = 100e6;
    ckt.add<VoltageSource>("V1", in, kGround,
                           std::make_shared<SineWaveform>(sine));
    DiodeParams dp;
    dp.cj0 = 0.2e-12;
    ckt.add<Diode>("D1", in, out, dp);
    ckt.add<Capacitor>("C1", out, kGround, 20e-12);
    ckt.add<Resistor>("R1", out, kGround, 20e3);
    ckt.finalize();

    ShootingOptions opt;
    opt.period = 1.0 / sine.frequency;
    SimStats stats;
    const ShootingResult pss = solvePeriodicSteadyState(ckt, opt, &stats);
    if (!pss.converged) {
        std::cerr << "shooting did not converge\n";
        return;
    }
    const Vector sel = ckt.selectorFor(out);
    const std::vector<double> wave = pss.steadyStatePeriod.signal(sel);
    double lo = wave.front();
    double hi = wave.front();
    for (double v : wave) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::cout << "converged in " << pss.iterations
              << " shooting iterations (" << stats.timeSteps
              << " total time steps)\n";
    std::cout << "steady-state output: mean ~" << 0.5 * (lo + hi)
              << " V, ripple " << (hi - lo) * 1e3 << " mV\n";
    std::cout << "a brute-force transient needs ~50 periods ("
              << 50 * 400 << " steps) to settle this RC tank\n\n";
}

}  // namespace

int main() {
    bodeOfCommonSource();
    rectifierSteadyState();
    return 0;
}
