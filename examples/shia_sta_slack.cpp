// shia_sta_slack -- the downstream use case that motivates the paper:
// Setup/Hold-Interdependence-Aware STA (SHIA-STA) pessimism reduction.
//
// Scenario (from the paper's introduction): a path into a register has a
// HOLD violation under the conventional single-point (setup, hold)
// characterization. Conventional STA flags it. But the register admits a
// whole CONTOUR of valid (setup, hold) pairs at the same clock-to-Q
// degradation: trading a longer (non-critical) setup time buys a shorter
// hold requirement, clearing the violation with no circuit change.
//
// This example traces the TSPC contour, then walks it to re-time a small
// synthetic path pair.
#include <algorithm>
#include <iostream>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/shia_contour.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

int main() {
    using namespace shtrace;

    // --- characterize the register interdependently ---
    const RegisterFixture reg = buildTspcRegister();
    RunConfig opt;  // unified options bundle (ex CharacterizeOptions)
    opt.tracer.maxPoints = 24;
    opt.tracer.bounds = SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
    const CharacterizeResult chz = characterizeInterdependent(reg, opt);
    if (!chz.success) {
        std::cerr << "characterization failed\n";
        return 1;
    }
    const auto& contour = chz.contour.points;
    // The STA-facing view: monotone interpolation + admission queries.
    const ShiaContour shia = ShiaContour::fromTrace(chz.contour);

    // Conventional library characterization publishes ONE valid
    // (setup, hold) pair -- here the balanced knee of the contour. Any
    // path must meet BOTH numbers; the rest of the contour's flexibility
    // is thrown away.
    const SkewPoint knee = contour[contour.size() / 2];
    const double holdMin = contour.back().hold;  // horizontal asymptote

    // --- synthetic timing paths into this register ---
    // Data arrives `arrival` before the capture edge (that margin is the
    // available setup skew) and is held `stability` after the edge (the
    // available hold skew).
    struct Path {
        const char* name;
        double arrival;    // data-valid margin before the edge
        double stability;  // data-stable margin after the edge
    };
    const Path paths[] = {
        {"P1 (comfortable)", knee.setup + 100e-12, knee.hold + 100e-12},
        // Plenty of setup margin, hold margin BELOW the knee requirement
        // but above the contour's hold asymptote: SHIA-STA territory.
        {"P2 (hold-critical)", contour.back().setup + 30e-12,
         0.5 * (knee.hold + holdMin)},
        // Below the smallest hold any contour point allows: truly broken.
        {"P3 (truly violating)", contour.back().setup + 30e-12,
         0.7 * holdMin},
    };

    TablePrinter table({"path", "avail setup", "avail hold",
                        "conventional STA", "SHIA-STA", "SHIA hold slack"});
    for (const Path& p : paths) {
        const bool conventionalOk =
            p.arrival >= knee.setup && p.stability >= knee.hold;
        // SHIA-STA: the path is safe when its (setup, hold) budget admits
        // SOME valid pair on the contour.
        const bool shiaOk = shia.admits(p.arrival, p.stability);
        const auto slack = shia.holdSlack(p.arrival, p.stability);
        table.addRowValues(p.name, formatEngineering(p.arrival, "s"),
                           formatEngineering(p.stability, "s"),
                           conventionalOk ? "PASS" : "VIOLATION",
                           shiaOk ? "PASS" : "VIOLATION",
                           slack ? formatEngineering(*slack, "s")
                                 : std::string("infeasible"));
    }

    std::cout << "register: " << reg.name
              << ", conventional (knee) setup/hold = ("
              << formatEngineering(knee.setup, "s") << ", "
              << formatEngineering(knee.hold, "s") << ")\n";
    std::cout << "interdependent contour: " << contour.size()
              << " points from (" << formatEngineering(contour.front().setup, "s")
              << ", " << formatEngineering(contour.front().hold, "s")
              << ") to (" << formatEngineering(contour.back().setup, "s")
              << ", " << formatEngineering(contour.back().hold, "s") << ")\n\n";
    table.print(std::cout);
    std::cout << "\nP2 is flagged by conventional STA (hold margin below "
                 "the independent hold\ntime) but clears under SHIA-STA: "
                 "its generous setup margin buys a point on\nthe contour "
                 "with a smaller hold requirement. P3 violates both -- the "
                 "contour\ncannot rescue a genuinely bad path.\n";
    return 0;
}
