// shia_sta_slack -- the downstream use case that motivates the paper:
// Setup/Hold-Interdependence-Aware STA (SHIA-STA) pessimism reduction.
//
// Scenario (from the paper's introduction): a path into a register has a
// HOLD violation under the conventional single-point (setup, hold)
// characterization. Conventional STA flags it. But the register admits a
// whole CONTOUR of valid (setup, hold) pairs at the same clock-to-Q
// degradation: trading a longer (non-critical) setup time buys a shorter
// hold requirement, clearing the violation with no circuit change.
//
// This example drives the real sta/ engine (shtrace/sta/engine.hpp) over
// a three-path netlist whose capture skews put one endpoint in each
// regime: comfortable, SHIA-recovered, and truly violating.
#include <iostream>

#include "shtrace/sta/engine.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

int main() {
    using namespace shtrace;

    // A TSPC launch register fans out into three shortcut paths; the
    // capture skews step the hold budget from comfortable (P1) through
    // knee-violating-but-contour-safe (P2) down past the contour's hold
    // asymptote (P3). Same grammar as netlists/*.stanet.
    const char* kDesign = R"(
        design shia_demo
        clock clk period 2n
        input din arrival 100p 300p

        reg r0 cell tspc d d0 q q0
        reg p1 cell tspc d n1 q x1 skew 400p
        reg p2 cell tspc d n2 q x2 skew 515p
        reg p3 cell tspc d n3 q x3 skew 570p

        gate g_in d0 from din 150p
        gate g1 n1 from q0 200p
        gate g2 n2 from q0 200p
        gate g3 n3 from q0 200p
    )";
    const sta::Design design = sta::parseDesign(kDesign);

    RunConfig config;  // unified options bundle (ex CharacterizeOptions)
    config.tracer.maxPoints = 24;
    const sta::StaReport report =
        sta::analyzeDesign(design, sta::builtinStaCells(), config);
    if (!report.success) {
        std::cerr << "analysis failed: " << report.failureReason << "\n";
        return 1;
    }

    // Conventional library characterization publishes ONE valid
    // (setup, hold) pair. The engine picks it as the Pareto-normalized
    // contour's knee (ShiaContour::kneePoint) -- NOT a raw traced
    // midpoint, which could land on a dominated point or the vertical
    // setup-asymptote segment. Any path must meet BOTH numbers; the rest
    // of the contour's flexibility is thrown away.
    const sta::CharacterizedStaCell& tspc = report.cells.at("tspc");
    const ShiaContour& shia = *tspc.contour;
    std::cout << "register: tspc, conventional (knee) setup/hold = ("
              << formatEngineering(tspc.knee.setup, "s") << ", "
              << formatEngineering(tspc.knee.hold, "s") << ")\n";
    std::cout << "interdependent contour: " << shia.size()
              << " Pareto points from ("
              << formatEngineering(shia.points().front().setup, "s") << ", "
              << formatEngineering(shia.points().front().hold, "s")
              << ") to ("
              << formatEngineering(shia.points().back().setup, "s") << ", "
              << formatEngineering(shia.points().back().hold, "s")
              << "), hold asymptote "
              << formatEngineering(shia.minHold(), "s") << "\n\n";

    TablePrinter table({"endpoint", "avail setup", "avail hold",
                        "conventional STA", "SHIA-STA", "SHIA hold slack"});
    for (const sta::EndpointCheck& ep : report.endpoints) {
        const bool conventionalOk =
            ep.classicalSetupOk && ep.classicalHoldOk;
        table.addRowValues(ep.reg, formatEngineering(ep.availSetup, "s"),
                           formatEngineering(ep.availHold, "s"),
                           conventionalOk ? "PASS" : "VIOLATION",
                           ep.shiaOk ? "PASS" : "VIOLATION",
                           ep.shiaFeasible
                               ? formatEngineering(ep.shiaHoldSlack, "s")
                               : std::string("infeasible"));
    }
    table.print(std::cout);

    std::cout << "\np2 is flagged by conventional STA (hold margin below "
                 "the knee hold time)\nbut clears under SHIA-STA: its "
                 "generous setup margin buys a point on the\ncontour with "
                 "a smaller hold requirement. p3 violates both -- the "
                 "contour\ncannot rescue a genuinely bad path.\n";
    std::cout << "recovered endpoints: " << report.recoveredEndpoints
              << " of " << report.endpoints.size() << "\n";
    return 0;
}
