// trace_contour -- the paper's headline flow on the TSPC register:
// criterion computation, Fig. 7 seed search, and Euler-Newton tracing of
// the 10%-degraded constant clock-to-Q contour (Fig. 8).
#include <iostream>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

int main() {
    using namespace shtrace;

    const RegisterFixture reg = buildTspcRegister();

    RunConfig opt;  // the unified options bundle of every chz entry point
    opt.tracer.maxPoints = 40;
    opt.tracer.bounds = SkewBounds{100e-12, 600e-12, 50e-12, 450e-12};

    std::cout << "Characterizing " << reg.name << " ...\n";
    const CharacterizeResult result = characterizeInterdependent(reg, opt);

    std::cout << "characteristic clock-to-Q: "
              << formatEngineering(result.characteristicClockToQ, "s")
              << "  (degraded target: "
              << formatEngineering(result.degradedClockToQ, "s") << ")\n";
    std::cout << "criterion: output = " << result.r << " V at t_f = "
              << formatEngineering(result.tf, "s") << "\n";
    if (!result.success) {
        std::cerr << "characterization failed (seed found: "
                  << result.seed.found << ", seed converged: "
                  << result.contour.seedConverged << ")\n";
        return 1;
    }

    std::cout << "seed bracket: ["
              << formatEngineering(result.seed.bracketLo, "s") << ", "
              << formatEngineering(result.seed.bracketHi, "s") << "] after "
              << result.seed.evaluations << " transients\n\n";

    TablePrinter table({"#", "setup skew", "hold skew", "|h| (V)",
                        "MPNR iters"});
    for (std::size_t i = 0; i < result.contour.points.size(); ++i) {
        table.addRowValues(
            static_cast<int>(i),
            formatEngineering(result.contour.points[i].setup, "s"),
            formatEngineering(result.contour.points[i].hold, "s"),
            result.contour.residuals[i],
            result.contour.correctorIterations[i]);
    }
    table.print(std::cout);
    std::cout << "\navg corrector iterations: "
              << result.contour.averageCorrectorIterations()
              << " (paper: 2-3 typical), predictor retries: "
              << result.contour.predictorRetries << "\n";
    std::cout << "total cost: " << result.stats << "\n";
    return 0;
}
