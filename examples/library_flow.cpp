// library_flow -- batch characterization of a small standard-cell library,
// producing a Liberty-lite .lib report with the interdependent setup/hold
// contour attached as a vendor extension. This is the industrial workload
// the paper's introduction costs out ("every register of every standard
// cell library, for all PVT corners, weeks or months on clusters").
//
// Usage: library_flow [output.lib]   (default: results/shtrace_cells.lib)
#include <filesystem>
#include <iostream>

#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/tg_dff.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/library.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

int main(int argc, char** argv) {
    using namespace shtrace;

    const std::string outputPath =
        argc > 1 ? argv[1] : "results/shtrace_cells.lib";

    CriterionOptions c2mosCrit;
    c2mosCrit.transitionFraction = 0.9;  // Sec. IV-B criterion

    // Two drive strengths per architecture, as a real library would have.
    const auto tspcAt = [](double load) {
        return [load] {
            TspcOptions opt;
            opt.outputLoadCapacitance = load;
            return buildTspcRegister(opt);
        };
    };
    const std::vector<LibraryCell> cells = {
        {"TSPC_X1", tspcAt(20e-15), CriterionOptions{}},
        {"TSPC_X2", tspcAt(40e-15), CriterionOptions{}},
        {"C2MOS_X1", [] { return buildC2mosRegister(); }, c2mosCrit},
        {"TGDFF_X1", [] { return buildTgDffRegister(); }, CriterionOptions{}},
    };

    // The unified batch API: one RunConfig for every driver, with the
    // worker-pool knob (0 = all hardware threads) and a progress hook.
    TracerOptions tracer;
    tracer.maxPoints = 12;
    tracer.bounds = SkewBounds{80e-12, 900e-12, 40e-12, 700e-12};
    const RunConfig config =
        RunConfig::defaults().withTracer(tracer).withThreads(0).withProgress(
            [](std::size_t job, std::size_t total) {
                std::cout << "  cell " << (job + 1) << "/" << total
                          << " done\n";
            });

    std::cout << "characterizing " << cells.size() << " cells ...\n";
    const auto rows = characterizeLibrary(cells, config);

    TablePrinter table({"cell", "clock-to-Q", "setup", "hold",
                        "contour pts", "transients", "wall (s)"});
    for (const auto& row : rows) {
        if (!row.success) {
            table.addRowValues(row.cell, "FAILED", row.failureReason, "-",
                               0, 0, 0.0);
            continue;
        }
        table.addRowValues(row.cell,
                           formatEngineering(row.characteristicClockToQ, "s"),
                           formatEngineering(row.setupTime, "s"),
                           formatEngineering(row.holdTime, "s"),
                           static_cast<int>(row.contour.size()),
                           static_cast<unsigned long long>(
                               row.stats.transientSolves),
                           row.stats.wallSeconds);
    }
    table.print(std::cout);

    const std::filesystem::path parent =
        std::filesystem::path(outputPath).parent_path();
    if (!parent.empty()) {
        std::filesystem::create_directories(parent);
    }
    writeLibertyLite(rows, outputPath);
    std::cout << "\ntotal batch cost: " << rows.stats << "\n";
    std::cout << "Liberty-lite report written: " << outputPath << "\n";
    return 0;
}
