// quickstart -- build the paper's TSPC register, simulate one latching
// event, and measure the characteristic clock-to-Q delay.
//
// This is the "hello world" of the library: circuit construction through a
// cell builder, transient analysis, and waveform measurement. See
// trace_contour.cpp for the paper's full interdependent characterization.
#include <iostream>

#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/measure/clock_to_q.hpp"
#include "shtrace/util/units.hpp"

int main() {
    using namespace shtrace;

    // A positive edge-triggered TSPC register with the paper's clocking:
    // 10 ns period, first rising edge at 1 ns, 0.1 ns edges, 2.5 V swing.
    // The data pulse is centered on the SECOND rising edge (11 ns).
    const RegisterFixture reg = buildTspcRegister();
    std::cout << "Register: " << reg.name << ", "
              << reg.circuit.systemSize() << " MNA unknowns, "
              << reg.circuit.deviceCount() << " devices\n";

    // Generous skews: data valid long before and after the clock edge.
    reg.data->setSkews(2e-9, 2e-9);

    TransientOptions opt;
    opt.tStop = reg.activeEdgeMidpoint() + 3e-9;
    opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);  // 10 ps grid
    SimStats stats;
    const TransientResult tr =
        TransientAnalysis(reg.circuit, opt).run(&stats);
    if (!tr.success) {
        std::cerr << "transient failed: " << tr.failureReason << "\n";
        return 1;
    }

    // Q should go 0 -> VDD at the 11 ns edge (the data pulse carries a 1).
    const Vector q = reg.circuit.selectorFor(reg.q);
    std::cout << "Q before the active edge: "
              << tr.valueAt(q, reg.activeEdgeMidpoint() - 0.5e-9) << " V\n";
    std::cout << "Q at end of simulation:   "
              << tr.valueAt(q, opt.tStop) << " V\n";

    ClockToQSpec spec;
    spec.clockEdgeMidpoint = reg.activeEdgeMidpoint();
    spec.outputInitial = reg.qInitial;
    spec.outputFinal = reg.qFinal;
    const auto c2q = measureClockToQ(tr, q, spec);
    if (!c2q) {
        std::cerr << "register failed to latch!\n";
        return 1;
    }
    std::cout << "Characteristic clock-to-Q delay: "
              << formatEngineering(*c2q, "s") << "\n";
    std::cout << "Cost: " << stats << "\n";
    return 0;
}
