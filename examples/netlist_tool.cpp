// netlist_tool -- characterize a register supplied as a SPICE-style
// netlist file. Demonstrates the text front end: the netlist declares the
// clock with CLOCK(...) and the skew-parameterized data line with
// DATAPULSE(...); the tool runs the complete Euler-Newton flow against it.
//
// Usage:
//   netlist_tool                  (runs a built-in TSPC-like demo netlist)
//   netlist_tool FILE Q_NODE      (characterizes your netlist's Q_NODE)
#include <iostream>
#include <string>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/circuit/netlist_parser.hpp"
#include "shtrace/chz/h_function.hpp"
#include "shtrace/chz/mpnr.hpp"
#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/measure/clock_to_q.hpp"
#include "shtrace/util/table.hpp"
#include "shtrace/util/units.hpp"

namespace {

// A dynamic register in netlist form: the TSPC structure of Fig. 6 with
// explicit .model cards, latching a falling datum at the 11.05 ns edge.
const char* kDemoNetlist = R"(
* TSPC positive edge-triggered register (Yuan-Svensson 9T + output inverter)
.model n1 NMOS VT0=0.45 KP=60u LAMBDA=0.06 W=0.6u L=0.25u CGS=1.44f CGD=1.44f CGB=0.12f CDB=0.48f CSB=0.48f
.model p1 PMOS VT0=0.50 KP=25u LAMBDA=0.10 W=1.2u L=0.25u CGS=2.88f CGD=2.88f CGB=0.24f CDB=0.96f CSB=0.96f
Vdd   vdd 0 2.5
Vclk  clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vdata d   0 DATAPULSE(2.5 0 11.05n 0.1n)
* stage 1: p-section (clock-gated pull-up)
MP1a s1 d   vdd vdd p1
MP1b x1 clk s1  vdd p1
MN1  x1 d   0   0   n1
* stage 2: precharge / evaluate
MP2  y  clk vdd vdd p1
MN3  y  x1  s2  0   n1
MN4  s2 clk 0   0   n1
* stage 3: hold / evaluate
MP3  qb y   vdd vdd p1
MN5  qb clk s3  0   n1
MN6  s3 y   0   0   n1
* output inverter + load
MP4  q  qb  vdd vdd p1
MN7  q  qb  0   0   n1
Cload q 0 20f
Cx1 x1 0 2f
Cy  y  0 2f
Cqb qb 0 2f
.end
)";

}  // namespace

int main(int argc, char** argv) {
    using namespace shtrace;

    ParsedNetlist parsed;
    std::string qName = "q";
    if (argc >= 2) {
        parsed = parseNetlistFile(argv[1]);
        if (argc >= 3) {
            qName = argv[2];
        }
        std::cout << "netlist: " << argv[1] << "\n";
    } else {
        parsed = parseNetlistString(kDemoNetlist);
        std::cout << "netlist: built-in TSPC demo\n";
    }

    const Circuit& ckt = parsed.circuit;
    const auto data = parsed.theDataPulse();
    const auto clock = parsed.theClock();
    const NodeId q = ckt.findNode(qName);
    std::cout << "devices: " << ckt.deviceCount()
              << ", unknowns: " << ckt.systemSize() << ", output node: '"
              << qName << "'\n";

    // --- criterion: characteristic clock-to-Q at generous skews ---
    const double tEdge = data->spec().activeEdgeTime;
    data->setSkews(2e-9, 2e-9);
    const Vector x0 = solveDcOperatingPoint(ckt).x;
    TransientOptions refOpt;
    refOpt.tStop = tEdge + 3e-9;
    refOpt.fixedSteps = static_cast<int>(refOpt.tStop / 10e-12);
    refOpt.initialCondition = x0;
    const TransientResult ref = TransientAnalysis(ckt, refOpt).run();
    if (!ref.success) {
        std::cerr << "reference transient failed: " << ref.failureReason
                  << "\n";
        return 1;
    }
    ClockToQSpec spec;
    spec.clockEdgeMidpoint = tEdge;
    spec.outputInitial = data->spec().v0;  // Q follows D in this cell
    spec.outputFinal = data->spec().v1;
    const auto c2q =
        measureClockToQ(ref, ckt.selectorFor(q), spec);
    if (!c2q) {
        std::cerr << "register did not latch at generous skews\n";
        return 1;
    }
    const double tf = tEdge + 1.1 * *c2q;
    std::cout << "characteristic clock-to-Q: " << formatEngineering(*c2q, "s")
              << ", t_f = " << formatEngineering(tf, "s")
              << ", r = " << spec.threshold() << " V\n";

    // --- Euler-Newton characterization ---
    TransientOptions hOpt;
    hOpt.tStop = tf;
    hOpt.fixedSteps = static_cast<int>(tf / 10e-12);
    hOpt.initialCondition = x0;
    const HFunction h(ckt, data, ckt.selectorFor(q), tf, spec.threshold(),
                      hOpt);
    const double passSign = spec.risingOutput() ? 1.0 : -1.0;
    const SeedResult seed = findSeedPoint(h, passSign);
    if (!seed.found) {
        std::cerr << "seed search failed\n";
        return 1;
    }
    TracerOptions tracerOpt;
    tracerOpt.maxPoints = 16;
    tracerOpt.bounds = SkewBounds{50e-12, 900e-12, 50e-12, 500e-12};
    SkewPoint start = seed.seed;
    start.hold = tracerOpt.bounds.holdMax;
    const TracedContour contour = traceContour(h, start, tracerOpt);
    if (!contour.seedConverged) {
        std::cerr << "tracing failed\n";
        return 1;
    }

    TablePrinter table({"setup skew", "hold skew", "|h| (V)"});
    for (std::size_t i = 0; i < contour.points.size(); ++i) {
        table.addRowValues(formatEngineering(contour.points[i].setup, "s"),
                           formatEngineering(contour.points[i].hold, "s"),
                           contour.residuals[i]);
    }
    table.print(std::cout);
    return 0;
}
