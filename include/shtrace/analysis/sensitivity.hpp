// shtrace -- skew-sensitivity helpers and finite-difference validation.
//
// The analytic sensitivities are computed inside TransientAnalysis (see
// transient.hpp). This header provides the convenience wrapper used by the
// characterization layer -- "run a transient and give me c^T x(t_f) plus its
// gradient w.r.t. (tau_s, tau_h)" -- and central-finite-difference reference
// implementations used by tests and by the ablation benches to quantify the
// cost the analytic method avoids.
#pragma once

#include <memory>

#include "shtrace/analysis/transient.hpp"
#include "shtrace/waveform/data_pulse.hpp"

namespace shtrace {

/// Output of one skew-parameterized transient evaluation.
struct SkewEvaluation {
    bool success = false;
    double output = 0.0;  ///< c^T x(t_f)
    double dOutputDSetup = 0.0;
    double dOutputDHold = 0.0;
};

/// Sets the skews on `data`, runs the transient described by `options`
/// (with sensitivity tracking forced on) and projects through `selector`.
SkewEvaluation evaluateWithSensitivities(const Circuit& circuit,
                                         DataPulse& data,
                                         const Vector& selector,
                                         double setupSkew, double holdSkew,
                                         const TransientOptions& options,
                                         SimStats* stats = nullptr);

/// Central finite-difference gradient of c^T x(t_f) w.r.t. the skews,
/// using 2 extra transients per parameter. Reference for tests/benches.
SkewEvaluation evaluateWithFiniteDifferences(const Circuit& circuit,
                                             DataPulse& data,
                                             const Vector& selector,
                                             double setupSkew, double holdSkew,
                                             const TransientOptions& options,
                                             double delta = 1e-13,
                                             SimStats* stats = nullptr);

}  // namespace shtrace
