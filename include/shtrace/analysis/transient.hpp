// shtrace -- transient analysis of d/dt q(x) + f(x) + b(t) = 0.
//
// Two stepping modes:
//
//  * fixed grid ("divide t=0..t_f into N points", paper algorithm step
//    2.a.i): uniform steps, used by the characterization layer. On a fixed
//    grid the DISCRETIZED state-transition function is itself a smooth
//    function of (tau_s, tau_h), and the sensitivity recurrences below
//    compute its exact derivative -- which is what makes the Moore-Penrose
//    Newton iteration converge quadratically regardless of grid resolution.
//
//  * adaptive: LTE-controlled step size with waveform-breakpoint landing,
//    for general-purpose simulation and the integrator ablation bench.
//
// Integration methods: Backward Euler and trapezoidal.
//
// Skew sensitivities (paper Section IIIC): when enabled, the engine
// co-integrates m_s = dx/dtau_s and m_h = dx/dtau_h. For Backward Euler
// (paper eqs. 11/13):
//     (C_i/dt + G_i) m_i = (C_{i-1}/dt) m_{i-1} - b_d z(t_i),
// and for trapezoidal (differentiating the TRAP residual):
//     (2C_i/dt + G_i) m_i = (2C_{i-1}/dt - G_{i-1}) m_{i-1}
//                           - b_d z(t_i) - b_d z(t_{i-1}).
// Both reuse the factored (a*C_i + G_i) matrix assembled at the accepted
// step solution, so each sensitivity costs one back-substitution -- the
// efficiency the paper leans on. With jacobianReuse on, that factorization
// may additionally be a few steps stale (chord Newton, see
// docs/ALGORITHM.md section 13); the chord contraction test bounds the
// staleness, keeping the recurrences first-order accurate in the Newton
// tolerance exactly as with per-step refactorization.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "shtrace/analysis/newton.hpp"
#include "shtrace/circuit/circuit.hpp"

namespace shtrace {

enum class IntegrationMethod {
    BackwardEuler,
    Trapezoidal,
    /// Gear's second-order BDF: A-stable like BE but second order, without
    /// TRAP's tendency to ring on stiff transitions. Fixed-grid mode only
    /// (the constant-step coefficients 3/2, -2, 1/2 are hard-coded); the
    /// first step bootstraps with Backward Euler.
    Gear2,
};

struct TransientOptions {
    double tStart = 0.0;
    double tStop = 0.0;  ///< required
    IntegrationMethod method = IntegrationMethod::Trapezoidal;

    // --- fixed-grid mode ---
    bool adaptive = false;
    int fixedSteps = 0;  ///< 0 = derive from dtMax (ceil of span/dtMax)

    // --- adaptive mode ---
    double dtInit = 1e-12;
    double dtMin = 1e-17;
    double dtMax = 0.0;  ///< 0 = (tStop - tStart) / 200
    double lteRelTol = 1e-3;
    double lteAbsTol = 1e-5;  ///< volts
    bool useBreakpoints = true;

    NewtonOptions newton;
    double gmin = 1e-12;  ///< node-row leak applied throughout

    /// Linear-algebra backend for every factor/solve of this run. Auto
    /// resolves against the circuit's system size (docs/LINALG.md); Dense
    /// preserves the pre-PR 6 trajectories bit-for-bit.
    LinalgBackend linalg = LinalgBackend::Auto;

    /// SoA-batched MOSFET evaluation in every assembly pass (bit-identical
    /// to the scalar path; see Circuit::assembleBatch).
    bool batchDeviceEval = false;

    /// Reuse the factored step Jacobian a*C + G across Newton iterations
    /// AND across accepted steps while the integration coefficient a =
    /// coef/dt is unchanged (chord/bypass Newton). Iterations on the reused
    /// factorization evaluate the EXACT residual (residual-only assembly,
    /// no G/C restamp) and apply the same convergence criteria as full
    /// Newton, so accepted solutions satisfy the same tolerances; the
    /// engine refactors automatically on slow convergence, damping
    /// activation, rejected steps, or a dt change. Off = legacy behavior:
    /// assemble + factor every iteration.
    bool jacobianReuse = true;

    /// Empty => solve the DC operating point at tStart for x0.
    std::optional<Vector> initialCondition;

    bool trackSkewSensitivities = false;
    bool storeStates = true;  ///< keep full x at every accepted step

    /// Record the per-step Jacobian pieces (C_i, G_i incl. gmin, times and
    /// method) needed by the adjoint backward sweep (adjoint.hpp). Costs
    /// two system matrices per accepted step of memory (CSC values on the
    /// sparse backend -- the tape never densifies), no extra compute.
    bool recordAdjointTape = false;
};

/// One entry of the adjoint tape: the epilogue assembly of an accepted
/// step (entry 0 is the initial condition's assembly at tStart). The
/// matrices are stored in the run's backend representation; consumers that
/// need a dense view (shooting's monodromy product) call toDense().
struct AdjointTapeEntry {
    double t = 0.0;
    SystemMatrix c;  ///< dq/dx at the accepted solution
    SystemMatrix g;  ///< df/dx at the accepted solution, including gmin
};

struct TransientResult {
    bool success = false;
    std::string failureReason;
    /// True when the run was aborted because an ACCEPTED state or
    /// co-integrated sensitivity went NaN/Inf (as opposed to an ordinary
    /// Newton non-convergence). Lets callers classify the failure.
    bool nonFinite = false;

    std::vector<double> times;   ///< accepted time points (incl. t0)
    std::vector<Vector> states;  ///< full x per time point (if storeStates)

    Vector finalState;           ///< x(tStop)
    Vector finalSensitivitySetup;  ///< m_s(tStop) (if tracked)
    Vector finalSensitivityHold;   ///< m_h(tStop) (if tracked)

    /// Sensitivity trajectories (only when storeStates && tracked).
    std::vector<Vector> sensitivitySetup;
    std::vector<Vector> sensitivityHold;

    /// Adjoint tape (only when recordAdjointTape); entry i corresponds to
    /// time point i (entry 0 = initial condition).
    std::vector<AdjointTapeEntry> adjointTape;
    IntegrationMethod tapeMethod = IntegrationMethod::Trapezoidal;

    /// Linear interpolation of c^T x at time t (requires storeStates).
    double valueAt(const Vector& selector, double t) const;
    /// Scalar signal c^T x at every stored time point.
    std::vector<double> signal(const Vector& selector) const;
};

class TransientAnalysis {
public:
    TransientAnalysis(const Circuit& circuit, TransientOptions options);

    /// Runs the analysis. Returns success=false (with a reason) instead of
    /// throwing on step-level non-convergence; throws only on misuse.
    TransientResult run(SimStats* stats = nullptr) const;

    const TransientOptions& options() const { return options_; }

private:
    const Circuit& circuit_;
    TransientOptions options_;
};

}  // namespace shtrace
