// shtrace -- periodic steady state by shooting Newton (Aprille-Trick).
//
// The paper derives its method from the nonlinear state-transition
// function phi(t; x0, t0) and cites Aprille-Trick [7] as the lineage; this
// module is that ancestor algorithm on the same machinery: find x0 with
//     F(x0) = phi(t0 + T; x0, t0) - x0 = 0
// by Newton, where dF/dx0 = M - I and M is the monodromy matrix
// M = d phi / d x0, propagated step by step from the recorded transient
// tape exactly as the skew sensitivities are (same factored Jacobians,
// matrix-valued right-hand sides):
//     BE:   (a C_i + G_i) M_i = a C_{i-1} M_{i-1}
//     TRAP: (a C_i + G_i) M_i = (a C_{i-1} - G_{i-1}) M_{i-1},  M_0 = I.
//
// The circuit's sources must be T-periodic over the shooting window
// (start the window after any initial source delay).
#pragma once

#include <optional>

#include "shtrace/analysis/transient.hpp"

namespace shtrace {

struct ShootingOptions {
    double period = 0.0;      ///< required: source period T
    double tStart = 0.0;      ///< window start (sources periodic from here)
    int stepsPerPeriod = 400;
    /// Backward Euler only: trapezoidal integration leaves the algebraic
    /// (MNA constraint) modes undamped, which puts unit eigenvalues into
    /// the monodromy matrix and makes (M - I) structurally singular. BE
    /// damps algebraic modes in one step, so its monodromy is the correct
    /// dynamic-subspace map.
    IntegrationMethod method = IntegrationMethod::BackwardEuler;
    int maxIterations = 25;
    /// Convergence: ||phi(T;x0) - x0||_inf below this (volts).
    double tolerance = 1e-6;
    NewtonOptions newton;  ///< inner per-step solves
    double gmin = 1e-12;
    /// Starting guess for x0; empty = DC operating point at tStart.
    std::optional<Vector> initialGuess;
};

struct ShootingResult {
    bool converged = false;
    Vector periodicState;     ///< x0 with phi(T;x0) = x0
    int iterations = 0;
    double finalError = 0.0;  ///< ||phi - x0||_inf at the last iterate
    /// The steady-state waveform over one period from `periodicState`
    /// (stored states), for inspection/measurement.
    TransientResult steadyStatePeriod;
};

ShootingResult solvePeriodicSteadyState(const Circuit& circuit,
                                        const ShootingOptions& options,
                                        SimStats* stats = nullptr);

}  // namespace shtrace
