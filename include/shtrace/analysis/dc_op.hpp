// shtrace -- DC operating point via Newton with gmin-stepping homotopy.
//
// Solves f(x) + b(t0) = 0 (charge terms dropped). Dynamic latch nodes that
// have no DC path to a supply are handled by the gmin conductances: a
// floating node settles to 0 V through the gmin leak, which mirrors real
// leakage and gives the fixed, tau-independent x0 the formulation needs.
//
// Strategy: try plain Newton at the gmin floor first; on failure walk gmin
// down from a large value (each stage seeded with the previous solution) --
// a textbook continuation method, fitting for a paper built on numerical
// continuation.
#pragma once

#include <vector>

#include "shtrace/analysis/newton.hpp"
#include "shtrace/circuit/circuit.hpp"

namespace shtrace {

struct DcOptions {
    NewtonOptions newton;
    double time = 0.0;        ///< source evaluation time
    double gminFloor = 1e-9;  ///< final leak conductance (kept, not removed)
    /// gmin continuation ladder used when the direct solve fails.
    std::vector<double> gminLadder = {1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8};
    /// Linear-algebra backend (Auto resolves by system size; docs/LINALG.md).
    LinalgBackend linalg = LinalgBackend::Auto;
    /// SoA-batched MOSFET evaluation (bit-identical to the scalar path).
    bool batchDeviceEval = false;
};

struct DcResult {
    Vector x;
    bool converged = false;
    int totalNewtonIterations = 0;
    bool usedContinuation = false;
};

/// Computes the DC operating point. Throws NumericalError only when even
/// the continuation ladder fails at its largest gmin (hopeless circuit).
DcResult solveDcOperatingPoint(const Circuit& circuit,
                               const DcOptions& options = {},
                               SimStats* stats = nullptr);

}  // namespace shtrace
