// shtrace -- damped Newton-Raphson for square nonlinear systems.
//
// Shared by the DC operating-point solver and the per-step transient solve.
// Convergence uses the SPICE tolerance model: every unknown's update must
// satisfy |dx_i| <= relTol*max(|x_i^new|, |x_i^old|) + absTol_i, where
// absTol_i is a voltage tolerance on node rows and a current tolerance on
// branch rows, plus an absolute residual check.
//
// The solver is backend-agnostic: the system callback fills a SystemMatrix
// (dense or CSC over the circuit's union pattern) and factor/solve go
// through the LinearSolver interface, so the same iteration drives both
// the dense and the sparse path (docs/LINALG.md). The pre-PR 6 dense-only
// entry points survive below as deprecated thin wrappers.
#pragma once

#include <functional>
#include <memory>

#include "shtrace/linalg/linear_solver.hpp"
#include "shtrace/linalg/lu.hpp"
#include "shtrace/linalg/matrix.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {

struct NewtonOptions {
    int maxIterations = 60;
    double relTol = 1e-4;
    double vAbsTol = 1e-6;       ///< update tolerance, node-voltage rows (V)
    double iAbsTol = 1e-9;       ///< update tolerance, branch-current rows (A)
    double residualTol = 1e-6;   ///< infinity-norm residual tolerance (A / V)
    double maxUpdate = 1.0;      ///< per-iteration infinity-norm damping clamp

    // Chord (bypass) phase of solveNewtonChord. A chord iteration solves
    // with a REUSED factorization and an exact residual; it converges
    // linearly with rate ||I - J_stale^-1 J||, so we demand each update to
    // shrink by `chordContraction` -- anything slower means the stale
    // Jacobian has drifted and a fresh factorization is cheaper than more
    // chord iterations.
    int chordMaxIterations = 8;      ///< chord budget before refactoring
    double chordContraction = 0.5;   ///< required per-iteration decay factor
};

struct NewtonResult {
    bool converged = false;
    int iterations = 0;          ///< full (fresh-Jacobian) iterations taken
    int chordIterations = 0;     ///< iterations taken on a reused LU
    double finalResidualNorm = 0.0;
    double finalUpdateNorm = 0.0;
    bool singular = false;  ///< Jacobian factorization failed at some iterate
    bool refactored = false;  ///< solveNewtonChord assembled a fresh Jacobian
};

/// Evaluates the residual and Jacobian at x. Must fill both outputs. The
/// jacobian arrives pre-bound (dense or sparse) by the caller's workspace;
/// the callback only writes values.
using NewtonSystemFn = std::function<void(const Vector& x, Vector& residual,
                                          SystemMatrix& jacobian)>;

/// DEPRECATED (PR 6): dense-only system callback, kept one release for
/// pre-LinearSolver call sites. New code fills a SystemMatrix via
/// NewtonSystemFn.
using DenseNewtonSystemFn =
    std::function<void(const Vector& x, Vector& residual, Matrix& jacobian)>;

/// Evaluates only the residual at x (chord iterations; the Jacobian is not
/// restamped). MUST agree exactly with the residual the NewtonSystemFn
/// produces at the same x.
using NewtonResidualFn = std::function<void(const Vector& x, Vector& residual)>;

/// Reusable buffers for the Newton step loop. One workspace per engine: the
/// transient hot path calls the solver thousands of times, and without this
/// every call would allocate an n-vector pair and an n x n matrix.
struct NewtonWorkspace {
    Vector residual;
    Vector dx;
    SystemMatrix jacobian;

    /// Legacy sizing: binds the Jacobian dense (the pre-PR 6 behavior).
    void resize(std::size_t n) {
        residual.resize(n);
        dx.resize(n);
        if (!jacobian.isDense() || jacobian.dimension() != n) {
            jacobian.bindDense(n);
        }
    }

    /// Backend-aware sizing: binds the Jacobian sparse over `pattern` when
    /// one is given, dense otherwise.
    void bind(std::size_t n,
              const std::shared_ptr<const SparsePattern>& pattern) {
        residual.resize(n);
        dx.resize(n);
        if (pattern != nullptr) {
            jacobian.bindSparse(pattern);
        } else if (!jacobian.isDense() || jacobian.dimension() != n) {
            jacobian.bindDense(n);
        }
    }
};

/// Solves F(x) = 0 starting from x (updated in place). `nodeRows` is the
/// number of leading rows using the voltage tolerance; remaining rows use
/// the current tolerance.
///
/// `solver` performs every factor/solve and on return holds the factors of
/// the LAST Jacobian the iteration assembled (i.e. at the final pre-update
/// iterate, which is within the Newton tolerance of the converged
/// solution). The transient engine hands this to the sensitivity
/// recurrences so each sensitivity costs only a pair of back-substitutions
/// -- the reuse the paper's efficiency argument rests on. The O(relTol)
/// Jacobian mismatch perturbs the computed gradient by the same relative
/// amount, far below what the Moore-Penrose Newton needs.
///
/// `ws.jacobian` must be bound (dense or sparse) to x.size() before the
/// call; the residual/dx buffers are resized here.
NewtonResult solveNewton(const NewtonSystemFn& system, Vector& x,
                         std::size_t nodeRows, const NewtonOptions& options,
                         LinearSolver& solver, NewtonWorkspace& ws,
                         SimStats* stats = nullptr);

/// Chord-Newton: like solveNewton, but when `reuseFactorization` is true and
/// `solver` holds a valid factorization, the solve first runs a chord phase
/// -- exact residuals against the REUSED factorization, no assembly of G/C
/// and no refactorization. The chord phase hands over to full Newton (fresh
/// Jacobian each iteration, `result.refactored = true`) as soon as it
/// stalls: update growth, contraction slower than
/// `options.chordContraction`, a step that would trigger damping, or the
/// `chordMaxIterations` budget. Convergence criteria are IDENTICAL to
/// solveNewton, so an accepted solution is within the same tolerance
/// regardless of which phase produced it.
///
/// On return `solver` holds the factorization the converged solution was
/// computed against (stale for a pure-chord solve, fresh otherwise); the
/// transient engine reuses it both for the sensitivity recurrences and as
/// the candidate chord factorization of the NEXT step. On the sparse
/// backend a refactorization is usually a numeric replay of the stored
/// symbolic structure (SparseLuFactorization), so even the handover is
/// cheap.
NewtonResult solveNewtonChord(const NewtonSystemFn& system,
                              const NewtonResidualFn& residualOnly, Vector& x,
                              std::size_t nodeRows,
                              const NewtonOptions& options,
                              LinearSolver& solver, bool reuseFactorization,
                              NewtonWorkspace& ws, SimStats* stats = nullptr);

/// DEPRECATED (PR 6): dense-only overload, kept one release. Wraps the
/// callback and a DenseLinearSolver; when `finalFactorization` is non-null
/// it receives the final LU factors exactly as before.
NewtonResult solveNewton(const DenseNewtonSystemFn& system, Vector& x,
                         std::size_t nodeRows, const NewtonOptions& options,
                         SimStats* stats = nullptr,
                         LuFactorization* finalFactorization = nullptr);

/// DEPRECATED (PR 6): dense-only chord overload, kept one release. The
/// factors move in and out of `lu` across the call (cheap buffer swaps).
NewtonResult solveNewtonChord(const DenseNewtonSystemFn& system,
                              const NewtonResidualFn& residualOnly, Vector& x,
                              std::size_t nodeRows,
                              const NewtonOptions& options,
                              LuFactorization& lu, bool reuseFactorization,
                              NewtonWorkspace& ws, SimStats* stats = nullptr);

}  // namespace shtrace
