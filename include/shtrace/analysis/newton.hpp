// shtrace -- damped Newton-Raphson for square nonlinear systems.
//
// Shared by the DC operating-point solver and the per-step transient solve.
// Convergence uses the SPICE tolerance model: every unknown's update must
// satisfy |dx_i| <= relTol*max(|x_i^new|, |x_i^old|) + absTol_i, where
// absTol_i is a voltage tolerance on node rows and a current tolerance on
// branch rows, plus an absolute residual check.
#pragma once

#include <functional>

#include "shtrace/linalg/lu.hpp"
#include "shtrace/linalg/matrix.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {

struct NewtonOptions {
    int maxIterations = 60;
    double relTol = 1e-4;
    double vAbsTol = 1e-6;       ///< update tolerance, node-voltage rows (V)
    double iAbsTol = 1e-9;       ///< update tolerance, branch-current rows (A)
    double residualTol = 1e-6;   ///< infinity-norm residual tolerance (A / V)
    double maxUpdate = 1.0;      ///< per-iteration infinity-norm damping clamp
};

struct NewtonResult {
    bool converged = false;
    int iterations = 0;
    double finalResidualNorm = 0.0;
    double finalUpdateNorm = 0.0;
    bool singular = false;  ///< Jacobian factorization failed at some iterate
};

/// Evaluates the residual and Jacobian at x. Must fill both outputs.
using NewtonSystemFn =
    std::function<void(const Vector& x, Vector& residual, Matrix& jacobian)>;

/// Solves F(x) = 0 starting from x (updated in place). `nodeRows` is the
/// number of leading rows using the voltage tolerance; remaining rows use
/// the current tolerance.
///
/// When `finalFactorization` is non-null it receives the LU factors of the
/// LAST Jacobian the iteration assembled (i.e. at the final pre-update
/// iterate, which is within the Newton tolerance of the converged
/// solution). The transient engine hands this to the sensitivity
/// recurrences so each sensitivity costs only a pair of back-substitutions
/// -- the reuse the paper's efficiency argument rests on. The O(relTol)
/// Jacobian mismatch perturbs the computed gradient by the same relative
/// amount, far below what the Moore-Penrose Newton needs.
NewtonResult solveNewton(const NewtonSystemFn& system, Vector& x,
                         std::size_t nodeRows, const NewtonOptions& options,
                         SimStats* stats = nullptr,
                         LuFactorization* finalFactorization = nullptr);

}  // namespace shtrace
