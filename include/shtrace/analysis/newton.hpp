// shtrace -- damped Newton-Raphson for square nonlinear systems.
//
// Shared by the DC operating-point solver and the per-step transient solve.
// Convergence uses the SPICE tolerance model: every unknown's update must
// satisfy |dx_i| <= relTol*max(|x_i^new|, |x_i^old|) + absTol_i, where
// absTol_i is a voltage tolerance on node rows and a current tolerance on
// branch rows, plus an absolute residual check.
#pragma once

#include <functional>

#include "shtrace/linalg/lu.hpp"
#include "shtrace/linalg/matrix.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {

struct NewtonOptions {
    int maxIterations = 60;
    double relTol = 1e-4;
    double vAbsTol = 1e-6;       ///< update tolerance, node-voltage rows (V)
    double iAbsTol = 1e-9;       ///< update tolerance, branch-current rows (A)
    double residualTol = 1e-6;   ///< infinity-norm residual tolerance (A / V)
    double maxUpdate = 1.0;      ///< per-iteration infinity-norm damping clamp

    // Chord (bypass) phase of solveNewtonChord. A chord iteration solves
    // with a REUSED factorization and an exact residual; it converges
    // linearly with rate ||I - J_stale^-1 J||, so we demand each update to
    // shrink by `chordContraction` -- anything slower means the stale
    // Jacobian has drifted and a fresh factorization is cheaper than more
    // chord iterations.
    int chordMaxIterations = 8;      ///< chord budget before refactoring
    double chordContraction = 0.5;   ///< required per-iteration decay factor
};

struct NewtonResult {
    bool converged = false;
    int iterations = 0;          ///< full (fresh-Jacobian) iterations taken
    int chordIterations = 0;     ///< iterations taken on a reused LU
    double finalResidualNorm = 0.0;
    double finalUpdateNorm = 0.0;
    bool singular = false;  ///< Jacobian factorization failed at some iterate
    bool refactored = false;  ///< solveNewtonChord assembled a fresh Jacobian
};

/// Evaluates the residual and Jacobian at x. Must fill both outputs.
using NewtonSystemFn =
    std::function<void(const Vector& x, Vector& residual, Matrix& jacobian)>;

/// Evaluates only the residual at x (chord iterations; the Jacobian is not
/// restamped). MUST agree exactly with the residual the NewtonSystemFn
/// produces at the same x.
using NewtonResidualFn = std::function<void(const Vector& x, Vector& residual)>;

/// Reusable buffers for the Newton step loop. One workspace per engine: the
/// transient hot path calls the solver thousands of times, and without this
/// every call would allocate an n-vector pair and an n x n matrix.
struct NewtonWorkspace {
    Vector residual;
    Vector dx;
    Matrix jacobian;

    void resize(std::size_t n) {
        residual.resize(n);
        dx.resize(n);
        if (jacobian.rows() != n || jacobian.cols() != n) {
            jacobian.resize(n, n);
        }
    }
};

/// Solves F(x) = 0 starting from x (updated in place). `nodeRows` is the
/// number of leading rows using the voltage tolerance; remaining rows use
/// the current tolerance.
///
/// When `finalFactorization` is non-null it receives the LU factors of the
/// LAST Jacobian the iteration assembled (i.e. at the final pre-update
/// iterate, which is within the Newton tolerance of the converged
/// solution). The transient engine hands this to the sensitivity
/// recurrences so each sensitivity costs only a pair of back-substitutions
/// -- the reuse the paper's efficiency argument rests on. The O(relTol)
/// Jacobian mismatch perturbs the computed gradient by the same relative
/// amount, far below what the Moore-Penrose Newton needs.
NewtonResult solveNewton(const NewtonSystemFn& system, Vector& x,
                         std::size_t nodeRows, const NewtonOptions& options,
                         SimStats* stats = nullptr,
                         LuFactorization* finalFactorization = nullptr);

/// Chord-Newton: like solveNewton, but when `reuseFactorization` is true and
/// `lu` holds a valid factorization, the solve first runs a chord phase --
/// exact residuals against the REUSED factorization, no assembly of G/C and
/// no refactorization. The chord phase hands over to full Newton (fresh
/// Jacobian each iteration, `result.refactored = true`) as soon as it
/// stalls: update growth, contraction slower than
/// `options.chordContraction`, a step that would trigger damping, or the
/// `chordMaxIterations` budget. Convergence criteria are IDENTICAL to
/// solveNewton, so an accepted solution is within the same tolerance
/// regardless of which phase produced it.
///
/// On return `lu` holds the factorization the converged solution was
/// computed against (stale for a pure-chord solve, fresh otherwise); the
/// transient engine reuses it both for the sensitivity recurrences and as
/// the candidate chord factorization of the NEXT step.
NewtonResult solveNewtonChord(const NewtonSystemFn& system,
                              const NewtonResidualFn& residualOnly, Vector& x,
                              std::size_t nodeRows,
                              const NewtonOptions& options,
                              LuFactorization& lu, bool reuseFactorization,
                              NewtonWorkspace& ws, SimStats* stats = nullptr);

}  // namespace shtrace
