// shtrace -- adjoint (backward) skew sensitivities.
//
// The forward recurrences (transient.hpp) propagate m = dx/dtau for each
// parameter; the adjoint method instead propagates one costate lambda
// BACKWARD from the output projection c and recovers the gradient of the
// scalar objective J = c^T x(t_f) with respect to ALL parameters in a
// single sweep:
//
//   BE:   J_N^T lambda_N = c,
//         J_i^T lambda_i = a C_i^T lambda_{i+1},            a = 1/dt
//         dJ/dtau = - sum_i lambda_i^T b z(t_i)
//   TRAP: J_i^T lambda_i = (a C_i - G_i)^T lambda_{i+1},    a = 2/dt
//         dJ/dtau = - sum_i lambda_i^T b (z(t_i) + z(t_{i-1}))
//
// with J_i = a C_i + G_i the same step Jacobians the forward transient
// factored. Because the tape records the exact discrete system, the
// adjoint gradient equals the forward gradient to solver precision -- the
// cross-check tests exploit this.
//
// With only two parameters (tau_s, tau_h) forward and adjoint cost about
// the same; the adjoint wins when the parameter count grows (e.g. per-edge
// slew or PVT sensitivities), which is why it is provided as an extension.
#pragma once

#include "shtrace/analysis/transient.hpp"

namespace shtrace {

/// Gradient of c^T x(t_f) with respect to the skews.
struct AdjointGradient {
    double dSetup = 0.0;
    double dHold = 0.0;
};

/// Consumes the adjoint tape recorded by a transient run with
/// `recordAdjointTape = true` (see TransientOptions) and performs the
/// backward sweep. Throws when the tape is missing or a step Jacobian is
/// singular.
AdjointGradient computeAdjointGradient(const Circuit& circuit,
                                       const TransientResult& result,
                                       const Vector& selector,
                                       SimStats* stats = nullptr);

}  // namespace shtrace
