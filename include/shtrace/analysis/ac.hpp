// shtrace -- AC small-signal analysis.
//
// Linearizes the circuit at its DC operating point and solves
//     (G + j omega C) x = s
// over a frequency sweep, where s carries the AC stimulus magnitudes
// declared on independent sources. Complements the transient machinery
// (same assembler, same Jacobians) and is the standard verification tool
// for the device models' small-signal parameters (gm, gds, capacitances).
#pragma once

#include <complex>
#include <vector>

#include "shtrace/analysis/newton.hpp"
#include "shtrace/circuit/circuit.hpp"

namespace shtrace {

struct AcOptions {
    /// Frequencies to solve at (Hz). Use logSweep() for decades.
    std::vector<double> frequencies;
    NewtonOptions newton;  ///< for the underlying DC solve
    double gmin = 1e-9;    ///< DC operating-point leak
};

/// Log-spaced frequency grid: pointsPerDecade samples from fStart to fStop.
std::vector<double> logSweep(double fStart, double fStop,
                             int pointsPerDecade = 10);

struct AcResult {
    std::vector<double> frequencies;
    /// response[k] = complex unknown vector at frequencies[k].
    std::vector<std::vector<std::complex<double>>> response;
    Vector operatingPoint;  ///< the DC solution the sweep linearized at

    /// Complex response of one node across the sweep.
    std::vector<std::complex<double>> nodeResponse(NodeId node) const;
    /// 20*log10(|v(node)|) across the sweep.
    std::vector<double> magnitudeDb(NodeId node) const;
    /// Phase in degrees across the sweep.
    std::vector<double> phaseDegrees(NodeId node) const;
};

/// Runs the sweep. AC stimuli are declared per source via
/// VoltageSource/CurrentSource::setAcMagnitude (default 0). Throws when no
/// source carries a stimulus or a system is singular.
AcResult runAcAnalysis(const Circuit& circuit, const AcOptions& options,
                       SimStats* stats = nullptr);

}  // namespace shtrace
