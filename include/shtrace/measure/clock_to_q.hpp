// shtrace -- clock-to-Q delay measurement.
//
// Clock-to-Q delay: from the 50% transition of the active clock edge to the
// prescribed transition fraction of the Q output (50% in the paper's TSPC
// experiment; 90% for C2MOS, whose clk/clk-bar overlap causes false partial
// transitions that revert after reaching 80% -- Fig. 11(b)).
#pragma once

#include <optional>

#include "shtrace/analysis/transient.hpp"

namespace shtrace {

struct ClockToQSpec {
    double clockEdgeMidpoint = 0.0;  ///< 50% time of the active clock edge
    double outputInitial = 0.0;      ///< Q level before the transition
    double outputFinal = 2.5;        ///< Q level after a successful latch
    double transitionFraction = 0.5; ///< fraction of the swing defining "done"

    /// Measurement threshold r: initial + fraction * (final - initial).
    double threshold() const {
        return outputInitial +
               transitionFraction * (outputFinal - outputInitial);
    }
    bool risingOutput() const { return outputFinal > outputInitial; }
};

/// Clock-to-Q delay from a stored transient; nullopt when the output never
/// crosses the threshold after the clock edge (failed latch).
std::optional<double> measureClockToQ(const TransientResult& result,
                                      const Vector& outputSelector,
                                      const ClockToQSpec& spec);

/// True when the output still sits past the threshold at the LAST stored
/// sample -- guards against the C2MOS false transitions where Q crosses the
/// threshold but then reverts (paper Fig. 11(b)).
bool latchedSuccessfully(const TransientResult& result,
                         const Vector& outputSelector,
                         const ClockToQSpec& spec);

}  // namespace shtrace
