// shtrace -- output surface over the (setup skew, hold skew) plane.
//
// The brute-force baseline (paper Figs. 1(a), 9): one transient per grid
// point, recording c^T x(t_f). Contours of constant clock-to-Q delay are
// then level sets of this surface (contour.hpp).
#pragma once

#include <string>
#include <vector>

#include "shtrace/linalg/matrix.hpp"

namespace shtrace {

/// A point in the skew plane.
struct SkewPoint {
    double setup = 0.0;
    double hold = 0.0;
};

class OutputSurface {
public:
    /// Axes must be strictly increasing with at least 2 samples each.
    OutputSurface(std::vector<double> setupSkews, std::vector<double> holdSkews);

    std::size_t setupCount() const { return setupSkews_.size(); }
    std::size_t holdCount() const { return holdSkews_.size(); }
    double setupAt(std::size_t i) const { return setupSkews_[i]; }
    double holdAt(std::size_t j) const { return holdSkews_[j]; }
    const std::vector<double>& setupSkews() const { return setupSkews_; }
    const std::vector<double>& holdSkews() const { return holdSkews_; }

    double value(std::size_t i, std::size_t j) const { return values_(i, j); }
    void setValue(std::size_t i, std::size_t j, double v) { values_(i, j) = v; }

    /// Bilinear interpolation at an arbitrary in-range skew point.
    double interpolate(const SkewPoint& p) const;
    bool contains(const SkewPoint& p) const;

    /// Dumps setup,hold,value rows (regenerates the paper's 3-D surface
    /// figures externally).
    void writeCsv(const std::string& path) const;

private:
    std::vector<double> setupSkews_;
    std::vector<double> holdSkews_;
    Matrix values_;  ///< [setup index][hold index]
};

}  // namespace shtrace
