// shtrace -- level-set contour extraction (marching squares).
//
// The brute-force flow intersects a horizontal plane at height r with the
// output surface (paper Figs. 1(b), 10, 12(b)); marching squares with
// linear interpolation is exactly that, and the interpolation error it
// carries is the accuracy handicap the paper contrasts with the "exact"
// (Newton-refined) Euler-Newton points.
#pragma once

#include <vector>

#include "shtrace/measure/surface.hpp"

namespace shtrace {

/// An open or closed polyline in the skew plane.
using ContourPolyline = std::vector<SkewPoint>;

/// Extracts all polylines of the level set {surface == level}. Polylines
/// are assembled from cell-edge segments by endpoint matching and ordered
/// by decreasing length.
std::vector<ContourPolyline> extractLevelContours(const OutputSurface& surface,
                                                  double level);

/// Distance from a point to the nearest point on a polyline (segments
/// treated exactly).
double distanceToPolyline(const SkewPoint& p, const ContourPolyline& poly);

/// Max over `points` of the distance to the nearest polyline in `contours`
/// -- the overlay-verification metric for Figs. 10/12(b).
double maxDeviation(const std::vector<SkewPoint>& points,
                    const std::vector<ContourPolyline>& contours);

}  // namespace shtrace
