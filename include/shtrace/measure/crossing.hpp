// shtrace -- threshold-crossing detection on sampled signals.
#pragma once

#include <optional>
#include <vector>

namespace shtrace {

struct Crossing {
    double time = 0.0;
    bool rising = false;  ///< signal increases through the threshold
};

/// All threshold crossings of a sampled signal (linear interpolation
/// between samples). `times` must be strictly increasing and the two arrays
/// equally sized. Samples exactly at the threshold count as a crossing with
/// the direction of the surrounding slope.
std::vector<Crossing> findCrossings(const std::vector<double>& times,
                                    const std::vector<double>& values,
                                    double threshold);

/// First crossing at or after `tAfter`; `wantRising` filters direction
/// (nullopt = either).
std::optional<Crossing> firstCrossingAfter(
    const std::vector<double>& times, const std::vector<double>& values,
    double threshold, double tAfter,
    std::optional<bool> wantRising = std::nullopt);

}  // namespace shtrace
