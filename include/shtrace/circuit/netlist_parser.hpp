// shtrace -- SPICE-style netlist parser.
//
// Grammar (one element per line, '*' or ';' comments, case-insensitive
// keywords, SPICE engineering suffixes on all numbers):
//
//   R<name> n1 n2 <value>
//   C<name> n1 n2 <value>
//   L<name> n1 n2 <value>
//   V<name> n+ n- <value>
//   V<name> n+ n- DC <value>
//   V<name> n+ n- PULSE(v0 v1 delay rise width fall)
//   V<name> n+ n- PWL(t1 v1 t2 v2 ...)
//   V<name> n+ n- CLOCK(v0 v1 period delay rise fall [duty] [inv])
//   V<name> n+ n- DATAPULSE(v0 v1 tedge ttrans)
//   V<name> n+ n- SIN(offset amplitude freq [delay] [damping])
//   V<name> n+ n- EXP(v1 v2 td1 tau1 td2 tau2)
//   I<name> n+ n- <same value forms>
//   E<name> p n cp cn <gain>
//   G<name> p n cp cn <transconductance>
//   D<name> anode cathode [IS=..] [N=..] [CJ0=..] [VJ=..] [M=..] [TT=..]
//   M<name> d g s b <NMOS|PMOS|modelname> [W=..] [L=..] [VT0=..] [KP=..]
//           [LAMBDA=..] [GAMMA=..] [PHI=..] [CGS=..] [CGD=..] [CGB=..]
//           [CDB=..] [CSB=..]
//   .model <name> <NMOS|PMOS> [same M parameters]
//   .end   (optional)
//
// Nodes "0" and "gnd" are ground. The parser records handles to every
// DATAPULSE and CLOCK waveform it creates so that characterization code can
// retune skews / read edge timing without re-parsing.
#pragma once

#include <istream>
#include <map>
#include <memory>
#include <string>

#include "shtrace/circuit/circuit.hpp"
#include "shtrace/waveform/clock.hpp"
#include "shtrace/waveform/data_pulse.hpp"

namespace shtrace {

struct ParsedNetlist {
    Circuit circuit;  ///< finalized and ready to analyze
    /// Skew-parameterized data waveforms by source name (usually one).
    std::map<std::string, std::shared_ptr<DataPulse>> dataPulses;
    /// Clock waveforms by source name.
    std::map<std::string, std::shared_ptr<ClockWaveform>> clocks;

    /// The unique data pulse; throws when there is none or more than one.
    std::shared_ptr<DataPulse> theDataPulse() const;
    /// The unique non-inverted clock; throws when absent/ambiguous.
    std::shared_ptr<ClockWaveform> theClock() const;
};

/// Parses a complete netlist. Throws ParseError with a line number on any
/// syntax or semantic problem.
ParsedNetlist parseNetlist(std::istream& in);
ParsedNetlist parseNetlistString(const std::string& text);
ParsedNetlist parseNetlistFile(const std::string& path);

}  // namespace shtrace
