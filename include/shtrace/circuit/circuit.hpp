// shtrace -- circuit container: nodes, devices, and the assembled MNA system.
//
// Usage:
//     Circuit ckt;
//     NodeId vdd = ckt.node("vdd"), out = ckt.node("out");
//     ckt.add<Resistor>("R1", vdd, out, 10e3);
//     ...
//     ckt.finalize();                 // assigns branch rows, freezes size
//     Assembler asmb(ckt.systemSize());
//     ckt.assemble(x, t, asmb);       // f, q, G, C at (x, t)
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {

struct MosfetBatchPlan;
struct MosfetBatchScratch;

class Circuit {
public:
    Circuit();
    ~Circuit();
    Circuit(Circuit&&) noexcept;
    Circuit& operator=(Circuit&&) noexcept;

    /// Returns the node with `name`, creating it when new. "0" and "gnd"
    /// (case-sensitive) map to ground.
    NodeId node(const std::string& name);

    /// Looks up an existing node; throws InvalidArgumentError when missing.
    NodeId findNode(const std::string& name) const;
    bool hasNode(const std::string& name) const;
    const std::string& nodeName(NodeId n) const;

    /// Constructs a device in place and returns a reference to it. The
    /// circuit owns the device. Must be called before finalize().
    template <typename T, typename... Args>
    T& add(Args&&... args) {
        require(!finalized_, "Circuit::add after finalize()");
        auto dev = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *dev;
        devices_.push_back(std::move(dev));
        return ref;
    }

    /// Assigns branch-current rows and freezes the unknown layout.
    void finalize();
    bool finalized() const { return finalized_; }

    int nodeCount() const { return static_cast<int>(nodeNames_.size()); }
    int branchCount() const { return branchRows_; }
    /// Total unknowns: node voltages + branch currents. Requires finalize().
    std::size_t systemSize() const;

    std::size_t deviceCount() const { return devices_.size(); }
    const Device& device(std::size_t i) const { return *devices_[i]; }

    /// Full assembly pass: f, q, G, C at (x, t).
    void assemble(const Vector& x, double t, Assembler& out,
                  SimStats* stats = nullptr) const;

    /// Residual-only assembly pass: f and q at (x, t), leaving G/C
    /// untouched (chord-Newton iterations on a reused factorization).
    /// Counted in SimStats::residualOnlyAssemblies, NOT deviceEvaluations.
    void assembleResidual(const Vector& x, double t, Assembler& out,
                          SimStats* stats = nullptr) const;

    /// SoA-batched assembly: all MOSFET Shichman-Hodges evaluations run in
    /// one pass over the finalize()-built contiguous parameter arrays, then
    /// every device stamps in declaration order (bit-identical to
    /// assemble(); also counted in SimStats::batchAssemblies). `scratch` is
    /// per-caller state, never shared across threads.
    void assembleBatch(const Vector& x, double t, Assembler& out,
                       MosfetBatchScratch& scratch,
                       SimStats* stats = nullptr) const;
    /// Batched counterpart of assembleResidual().
    void assembleResidualBatch(const Vector& x, double t, Assembler& out,
                               MosfetBatchScratch& scratch,
                               SimStats* stats = nullptr) const;

    /// The union Jacobian sparsity pattern over every device's
    /// Device::stampPattern positions plus the full diagonal; what a
    /// sparse-backed Assembler and the G/C/J matrices share. Requires
    /// finalize().
    const std::shared_ptr<const SparsePattern>& sparsityPattern() const;

    /// The SoA batch plan over this circuit's MOSFETs. Requires finalize().
    const MosfetBatchPlan& batchPlan() const;

    /// Accumulates sum over devices of b * du/dtau_p at time t into `rhs`
    /// (rhs must be systemSize() long; contributions are ADDED).
    void addSkewDerivative(double t, SkewParam p, Vector& rhs) const;

    /// Accumulates every source's AC stimulus into `rhs` (for AC analysis).
    void addAcStimulus(Vector& rhs) const;

    /// Collects all waveform breakpoints in (t0, t1), sorted and deduped.
    std::vector<double> breakpoints(double t0, double t1) const;

    /// Unit selector vector c with 1.0 at the row of node n (paper's c^T x).
    Vector selectorFor(NodeId n) const;

    /// Canonical text describing the finalized circuit's physics: node and
    /// branch counts plus every device's Device::describe() line in
    /// declaration order (which fixes the MNA row layout). Node and device
    /// NAMES are excluded -- two circuits that differ only in labels get
    /// the same text. The persistent store (store/) hashes this as the
    /// netlist component of a characterization cache key.
    std::string canonicalDescription() const;

private:
    std::unordered_map<std::string, int> nodeIndex_;
    std::vector<std::string> nodeNames_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::shared_ptr<const SparsePattern> pattern_;  ///< built by finalize()
    std::unique_ptr<MosfetBatchPlan> batchPlan_;    ///< built by finalize()
    int branchRows_ = 0;
    bool finalized_ = false;
};

}  // namespace shtrace
