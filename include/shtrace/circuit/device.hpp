// shtrace -- device interface for MNA stamping.
//
// Every nonlinear circuit is represented by the DAE (paper eq. 1)
//     d/dt q(x) + f(x) + b_c u_c(t) + b_d u_d(t, tau_s, tau_h) = 0
// in MNA form: x stacks non-ground node voltages and source/inductor branch
// currents. Devices contribute to q, f and their Jacobians C = dq/dx,
// G = df/dx through the Assembler. Independent sources additionally fold
// their waveform value into f at evaluation time; sources driven by a
// skew-parameterized waveform expose b * du/dtau for the sensitivity engine
// via addSkewDerivative (the b_d z_s / b_d z_h terms of eqs. 11/13).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "shtrace/linalg/vector.hpp"
#include "shtrace/waveform/waveform.hpp"

namespace shtrace {

class Assembler;

/// Identifies a circuit node. Ground is index -1; every other node has a
/// non-negative dense index equal to its row in the unknown vector.
struct NodeId {
    int index = -1;

    constexpr bool isGround() const noexcept { return index < 0; }
    friend constexpr bool operator==(NodeId a, NodeId b) noexcept {
        return a.index == b.index;
    }
};

/// The designated ground node.
inline constexpr NodeId kGround{-1};

/// Hands out branch-current rows during Circuit::finalize().
class BranchAllocator {
public:
    explicit BranchAllocator(int firstRow) : next_(firstRow) {}
    int allocate() { return next_++; }
    int next() const { return next_; }

private:
    int next_;
};

/// Everything a device needs to evaluate itself at one (x, t) point.
struct EvalContext {
    const Vector& x;  ///< current unknown vector
    double time;      ///< simulation time (DC uses the analysis time, usually 0)
};

class Device {
public:
    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;
    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const std::string& name() const { return name_; }

    /// Number of extra unknown rows (branch currents) this device needs.
    virtual int branchCount() const { return 0; }

    /// Called once by Circuit::finalize(); devices with branches must store
    /// the allocated row indices.
    virtual void allocateBranches(BranchAllocator&) {}

    /// Adds the device's contributions to f, q, G, C (and the source value
    /// terms b*u(t) into f).
    virtual void eval(const EvalContext& ctx, Assembler& out) const = 0;

    /// Adds only the algebraic contributions f and q at (x, t) -- no G/C
    /// stamps. Chord (bypass) Newton iterations reuse a previously factored
    /// Jacobian, so restamping it every iteration is wasted work. The
    /// default forwards to eval(); the Assembler silently drops Jacobian
    /// stamps during a residual pass, so overriding this is purely an
    /// optimization (skip the derivative arithmetic), never a correctness
    /// requirement. Overrides MUST produce byte-identical f/q to eval().
    virtual void evalResidual(const EvalContext& ctx, Assembler& out) const {
        eval(ctx, out);
    }

    /// Declares every (row, col) Jacobian position the device can EVER
    /// stamp, by stamping into an Assembler pattern-discovery pass
    /// (Circuit::finalize builds the sparse backend's union pattern from
    /// one such pass; values are ignored, positions are symmetrized). The
    /// default evaluates the device at x = 0, t = 0, which is exact for
    /// devices whose stamp positions are state-independent -- every
    /// built-in except Mosfet, whose drain/source symmetry swap moves
    /// stamps between terminals and which therefore overrides this to
    /// declare both orientations.
    virtual void stampPattern(Assembler& out) const;

    /// Writes a one-line canonical description: device type, terminal node
    /// indices, and every parameter that influences eval(), numbers in
    /// hex-float. The persistent store (store/) hashes this text as part
    /// of the circuit's cache key, so equal descriptions MUST imply equal
    /// stamps -- pure virtual so a new device cannot silently alias with
    /// another in the cache. The device NAME is deliberately excluded:
    /// renaming a transistor does not change the physics.
    virtual void describe(std::ostream& os) const = 0;

    /// Adds b * du/dtau_p at time t into `rhs` for sources whose waveform
    /// depends on the skews. Default: no dependence.
    virtual void addSkewDerivative(double /*t*/, SkewParam /*p*/,
                                   Vector& /*rhs*/) const {}

    /// Adds this device's AC stimulus into the small-signal right-hand
    /// side (independent sources with a nonzero AC magnitude). Default:
    /// none.
    virtual void addAcStimulus(Vector& /*rhs*/) const {}

    /// Appends waveform breakpoints in (t0, t1) for the transient stepper.
    virtual void breakpoints(double /*t0*/, double /*t1*/,
                             std::vector<double>& /*out*/) const {}

private:
    std::string name_;
};

}  // namespace shtrace
