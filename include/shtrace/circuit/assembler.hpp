// shtrace -- MNA stamp accumulator.
//
// One Assembler instance is reused across the whole analysis; beginPass()
// zeroes the arrays, devices stamp, and the analysis reads f/q/G/C. Ground
// rows and columns are silently dropped, which keeps device stamping code
// free of special cases.
//
// Residual-only passes: beginResidualPass() zeroes only f/q and makes every
// G/C stamp a no-op, so chord (bypass) Newton iterations -- which reuse a
// previously factored Jacobian -- skip both the O(n^2) matrix zeroing and
// the Jacobian arithmetic. Devices may additionally override
// Device::evalResidual to skip computing derivative terms entirely; the
// mode flag here keeps the default eval() fallback correct regardless.
// Reading g()/c() after a residual pass is a misuse and throws.
#pragma once

#include "shtrace/circuit/device.hpp"
#include "shtrace/linalg/matrix.hpp"

namespace shtrace {

class Assembler {
public:
    explicit Assembler(std::size_t systemSize)
        : f_(systemSize),
          q_(systemSize),
          g_(systemSize, systemSize),
          c_(systemSize, systemSize) {}

    void beginPass() {
        residualOnly_ = false;
        f_.setZero();
        q_.setZero();
        g_.setZero();
        c_.setZero();
    }

    /// Starts an f/q-only pass: G/C keep their (stale) values and every
    /// Jacobian stamp below becomes a no-op.
    void beginResidualPass() {
        residualOnly_ = true;
        f_.setZero();
        q_.setZero();
    }

    /// True while the current pass accumulates only f and q.
    bool residualOnly() const noexcept { return residualOnly_; }

    std::size_t systemSize() const { return f_.size(); }

    // --- node-indexed stamps (ground dropped automatically) ---

    /// f[n] += i : current `i` leaves node n through the device.
    void addCurrent(NodeId n, double i) {
        if (!n.isGround()) {
            f_[row(n)] += i;
        }
    }
    /// q[n] += charge.
    void addCharge(NodeId n, double charge) {
        if (!n.isGround()) {
            q_[row(n)] += charge;
        }
    }
    /// G[a][b] += g.
    void addConductance(NodeId a, NodeId b, double g) {
        if (!residualOnly_ && !a.isGround() && !b.isGround()) {
            g_(row(a), row(b)) += g;
        }
    }
    /// C[a][b] += c.
    void addCapacitance(NodeId a, NodeId b, double c) {
        if (!residualOnly_ && !a.isGround() && !b.isGround()) {
            c_(row(a), row(b)) += c;
        }
    }

    // --- raw-row stamps (branch equations) ---

    void addToF(int rowIdx, double v) { f_[check(rowIdx)] += v; }
    void addToQ(int rowIdx, double v) { q_[check(rowIdx)] += v; }
    void addToG(int rowIdx, NodeId col, double v) {
        if (!residualOnly_ && !col.isGround()) {
            g_(check(rowIdx), row(col)) += v;
        }
    }
    void addToGRaw(int rowIdx, int colIdx, double v) {
        if (!residualOnly_) {
            g_(check(rowIdx), check(colIdx)) += v;
        }
    }
    void addToCRaw(int rowIdx, int colIdx, double v) {
        if (!residualOnly_) {
            c_(check(rowIdx), check(colIdx)) += v;
        }
    }
    /// Column-only stamp: G[row(a)][branchCol] += v (node KCL row picks up a
    /// branch current).
    void addBranchToNode(NodeId a, int branchCol, double v) {
        if (!residualOnly_ && !a.isGround()) {
            g_(row(a), check(branchCol)) += v;
        }
    }

    /// Voltage of node n under unknown vector x (0 for ground).
    static double nodeVoltage(const Vector& x, NodeId n) {
        return n.isGround() ? 0.0 : x[static_cast<std::size_t>(n.index)];
    }

    const Vector& f() const { return f_; }
    const Vector& q() const { return q_; }
    const Matrix& g() const {
        require(!residualOnly_, "Assembler::g() after a residual-only pass");
        return g_;
    }
    const Matrix& c() const {
        require(!residualOnly_, "Assembler::c() after a residual-only pass");
        return c_;
    }

private:
    std::size_t row(NodeId n) const {
        return static_cast<std::size_t>(check(n.index));
    }
    int check(int idx) const {
        require(idx >= 0 && static_cast<std::size_t>(idx) < f_.size(),
                "Assembler: row/col ", idx, " out of range ", f_.size());
        return idx;
    }

    Vector f_;
    Vector q_;
    Matrix g_;
    Matrix c_;
    bool residualOnly_ = false;
};

}  // namespace shtrace
