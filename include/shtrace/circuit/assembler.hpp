// shtrace -- MNA stamp accumulator.
//
// One Assembler instance is reused across the whole analysis; beginPass()
// zeroes the arrays, devices stamp, and the analysis reads f/q/G/C. Ground
// rows and columns are silently dropped, which keeps device stamping code
// free of special cases.
//
// Storage backend: an Assembler is bound at construction to either dense
// Matrix storage (the default, byte-compatible with every release so far)
// or CSC values over the circuit's fixed union SparsePattern. Devices stamp
// through the same addConductance/addCapacitance calls either way; in
// sparse mode each stamp resolves its (row, col) to a nonzero slot with a
// binary search over the short sorted column (MNA columns hold a handful
// of entries). G and C share the ONE pattern object, so the step Jacobian
// a*C + G stays an elementwise combine downstream.
//
// Residual-only passes: beginResidualPass() zeroes only f/q and makes every
// G/C stamp a no-op, so chord (bypass) Newton iterations -- which reuse a
// previously factored Jacobian -- skip both the matrix zeroing and the
// Jacobian arithmetic. Devices may additionally override
// Device::evalResidual to skip computing derivative terms entirely; the
// mode flag here keeps the default eval() fallback correct regardless.
// Reading g()/c() after a residual pass is a misuse and throws.
//
// Pattern-discovery passes: beginPatternPass() records the (row, col)
// position of every Jacobian stamp -- symmetrized, values ignored -- into a
// caller-provided sink. Circuit::finalize() drives one such pass through
// Device::stampPattern to build the union SparsePattern the sparse backend
// stamps into.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "shtrace/circuit/device.hpp"
#include "shtrace/linalg/linear_solver.hpp"
#include "shtrace/linalg/matrix.hpp"

namespace shtrace {

class Assembler {
public:
    /// Dense-backed when `pattern` is null (the legacy default), sparse
    /// CSC-backed over `pattern` otherwise.
    explicit Assembler(std::size_t systemSize,
                       std::shared_ptr<const SparsePattern> pattern = nullptr)
        : f_(systemSize), q_(systemSize), pattern_(std::move(pattern)) {
        if (pattern_ != nullptr) {
            require(pattern_->dimension() == systemSize,
                    "Assembler: pattern dimension ", pattern_->dimension(),
                    " != system size ", systemSize);
            gSys_.bindSparse(pattern_);
            cSys_.bindSparse(pattern_);
        } else {
            gSys_.bindDense(systemSize);
            cSys_.bindDense(systemSize);
        }
    }

    bool sparse() const noexcept { return pattern_ != nullptr; }

    void beginPass() {
        pass_ = Pass::Full;
        patternSink_ = nullptr;
        f_.setZero();
        q_.setZero();
        gSys_.setZero();
        cSys_.setZero();
    }

    /// Starts an f/q-only pass: G/C keep their (stale) values and every
    /// Jacobian stamp below becomes a no-op.
    void beginResidualPass() {
        pass_ = Pass::ResidualOnly;
        patternSink_ = nullptr;
        f_.setZero();
        q_.setZero();
    }

    /// Starts a pattern-discovery pass: every G/C stamp appends its
    /// symmetrized (row, col) + (col, row) positions to `sink` and no
    /// matrix value is touched; f/q accumulate but are meaningless.
    void beginPatternPass(std::vector<std::pair<int, int>>& sink) {
        pass_ = Pass::Pattern;
        patternSink_ = &sink;
        f_.setZero();
        q_.setZero();
    }

    /// True while the current pass accumulates only f and q.
    bool residualOnly() const noexcept { return pass_ == Pass::ResidualOnly; }

    std::size_t systemSize() const { return f_.size(); }

    // --- node-indexed stamps (ground dropped automatically) ---

    /// f[n] += i : current `i` leaves node n through the device.
    void addCurrent(NodeId n, double i) {
        if (!n.isGround()) {
            f_[row(n)] += i;
        }
    }
    /// q[n] += charge.
    void addCharge(NodeId n, double charge) {
        if (!n.isGround()) {
            q_[row(n)] += charge;
        }
    }
    /// G[a][b] += g.
    void addConductance(NodeId a, NodeId b, double g) {
        if (!a.isGround() && !b.isGround()) {
            stamp(gSys_, row(a), row(b), g);
        }
    }
    /// C[a][b] += c.
    void addCapacitance(NodeId a, NodeId b, double c) {
        if (!a.isGround() && !b.isGround()) {
            stamp(cSys_, row(a), row(b), c);
        }
    }

    // --- raw-row stamps (branch equations) ---

    void addToF(int rowIdx, double v) { f_[check(rowIdx)] += v; }
    void addToQ(int rowIdx, double v) { q_[check(rowIdx)] += v; }
    void addToG(int rowIdx, NodeId col, double v) {
        if (!col.isGround()) {
            stamp(gSys_, static_cast<std::size_t>(check(rowIdx)), row(col), v);
        }
    }
    void addToGRaw(int rowIdx, int colIdx, double v) {
        stamp(gSys_, static_cast<std::size_t>(check(rowIdx)),
              static_cast<std::size_t>(check(colIdx)), v);
    }
    void addToCRaw(int rowIdx, int colIdx, double v) {
        stamp(cSys_, static_cast<std::size_t>(check(rowIdx)),
              static_cast<std::size_t>(check(colIdx)), v);
    }
    /// Column-only stamp: G[row(a)][branchCol] += v (node KCL row picks up a
    /// branch current).
    void addBranchToNode(NodeId a, int branchCol, double v) {
        if (!a.isGround()) {
            stamp(gSys_, row(a), static_cast<std::size_t>(check(branchCol)),
                  v);
        }
    }

    /// Voltage of node n under unknown vector x (0 for ground).
    static double nodeVoltage(const Vector& x, NodeId n) {
        return n.isGround() ? 0.0 : x[static_cast<std::size_t>(n.index)];
    }

    const Vector& f() const { return f_; }
    const Vector& q() const { return q_; }

    /// Jacobians in whichever storage this Assembler is bound to.
    const SystemMatrix& gSystem() const {
        require(pass_ == Pass::Full,
                "Assembler::gSystem() outside a full pass");
        return gSys_;
    }
    const SystemMatrix& cSystem() const {
        require(pass_ == Pass::Full,
                "Assembler::cSystem() outside a full pass");
        return cSys_;
    }

    /// Deprecated dense accessors (pre-LinearSolver API): valid only on a
    /// dense-backed Assembler. New code should read gSystem()/cSystem().
    const Matrix& g() const { return gSystem().dense(); }
    const Matrix& c() const { return cSystem().dense(); }

private:
    enum class Pass { Full, ResidualOnly, Pattern };

    void stamp(SystemMatrix& m, std::size_t r, std::size_t c, double v) {
        switch (pass_) {
            case Pass::Full:
                if (pattern_ != nullptr) {
                    const int nz = pattern_->indexOf(static_cast<int>(r),
                                                     static_cast<int>(c));
                    require(nz >= 0, "Assembler: stamp (", r, ",", c,
                            ") outside the circuit's sparsity pattern");
                    m.sparse().addAt(nz, v);
                } else {
                    m.dense()(r, c) += v;
                }
                break;
            case Pass::ResidualOnly:
                break;
            case Pass::Pattern:
                patternSink_->emplace_back(static_cast<int>(r),
                                           static_cast<int>(c));
                patternSink_->emplace_back(static_cast<int>(c),
                                           static_cast<int>(r));
                break;
        }
    }

    std::size_t row(NodeId n) const {
        return static_cast<std::size_t>(check(n.index));
    }
    int check(int idx) const {
        require(idx >= 0 && static_cast<std::size_t>(idx) < f_.size(),
                "Assembler: row/col ", idx, " out of range ", f_.size());
        return idx;
    }

    Vector f_;
    Vector q_;
    std::shared_ptr<const SparsePattern> pattern_;  ///< null in dense mode
    SystemMatrix gSys_;
    SystemMatrix cSys_;
    Pass pass_ = Pass::Full;
    std::vector<std::pair<int, int>>* patternSink_ = nullptr;
};

}  // namespace shtrace
