// shtrace -- analog source waveforms (SPICE SIN and EXP).
//
// Not needed by the characterization flow itself, but a circuit simulator
// that wants to be adopted needs the standard source vocabulary; they also
// exercise the smooth-waveform (no breakpoints) path of the transient
// stepper in tests.
#pragma once

#include "shtrace/waveform/waveform.hpp"

namespace shtrace {

/// SPICE SIN(vo va freq td theta): offset + damped sine starting at td.
class SineWaveform final : public Waveform {
public:
    struct Spec {
        double offset = 0.0;     ///< vo
        double amplitude = 1.0;  ///< va
        double frequency = 1e6;  ///< Hz
        double delay = 0.0;      ///< td: value is `offset` before this
        double damping = 0.0;    ///< theta (1/s)
    };

    explicit SineWaveform(const Spec& spec);

    double value(double t) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;
    void describe(std::ostream& os) const override;

    const Spec& spec() const { return spec_; }

private:
    Spec spec_;
};

/// SPICE EXP(v1 v2 td1 tau1 td2 tau2): exponential rise then decay.
class ExpWaveform final : public Waveform {
public:
    struct Spec {
        double v1 = 0.0;
        double v2 = 1.0;
        double riseDelay = 0.0;
        double riseTau = 1e-9;
        double fallDelay = 2e-9;
        double fallTau = 1e-9;
    };

    explicit ExpWaveform(const Spec& spec);

    double value(double t) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;
    void describe(std::ostream& os) const override;

    const Spec& spec() const { return spec_; }

private:
    Spec spec_;
};

}  // namespace shtrace
