// shtrace -- the skew-parameterized data waveform u_d(t, tau_s, tau_h).
//
// Per the paper's Fig. 2, the data line carries a pulse centered on the
// active clock edge: its leading-edge 50% point precedes the edge by the
// setup skew tau_s and its trailing-edge 50% point follows the edge by the
// hold skew tau_h. Increasing tau_s moves the data transition earlier;
// increasing tau_h keeps it stable longer after the edge.
//
// The waveform's analytic skew derivatives z_s(t) = du/dtau_s and
// z_h(t) = du/dtau_h drive the sensitivity recurrences (eqs. 11/13). With a
// leading-edge profile p((t - tLead + tr/2)/tr), tLead = tEdge - tau_s:
//     du/dtau_s = (v1 - v0) * p'(u) / tr  (nonzero only on the leading edge)
// and symmetrically for the trailing edge with opposite sign convention.
#pragma once

#include "shtrace/waveform/waveform.hpp"

namespace shtrace {

class DataPulse final : public SkewParametricWaveform {
public:
    struct Spec {
        double v0 = 0.0;       ///< level before the pulse (and after it)
        double v1 = 2.5;       ///< pulse level (the latched datum)
        double activeEdgeTime = 11e-9;  ///< 50% point of the active clock edge
        double transitionTime = 0.1e-9;  ///< data rise/fall time (both edges)
        EdgeShape shape = EdgeShape::Smoothstep;
    };

    explicit DataPulse(const Spec& spec);

    void setSkews(double setupSkew, double holdSkew) override;
    double setupSkew() const override { return setupSkew_; }
    double holdSkew() const override { return holdSkew_; }

    double value(double t) const override;
    double skewDerivative(double t, SkewParam p) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;
    /// Describes the structural Spec only -- the current skews are the
    /// running coordinates of h(tau_s, tau_h), not circuit identity.
    void describe(std::ostream& os) const override;

    const Spec& spec() const { return spec_; }

    /// 50% time of the leading (data-arrival) edge: tEdge - tau_s.
    double leadingEdgeMidpoint() const {
        return spec_.activeEdgeTime - setupSkew_;
    }
    /// 50% time of the trailing (data-removal) edge: tEdge + tau_h.
    double trailingEdgeMidpoint() const {
        return spec_.activeEdgeTime + holdSkew_;
    }

private:
    /// Normalized progress u of an edge whose 50% point is at `mid`.
    double edgeU(double t, double mid) const {
        return (t - (mid - 0.5 * spec_.transitionTime)) / spec_.transitionTime;
    }

    Spec spec_;
    double setupSkew_ = 0.0;
    double holdSkew_ = 0.0;
};

}  // namespace shtrace
