// shtrace -- single (non-periodic) pulse waveform with shaped edges.
#pragma once

#include "shtrace/waveform/waveform.hpp"

namespace shtrace {

/// v0 until `delay`, ramps to v1 over `riseTime`, holds for `width`,
/// ramps back over `fallTime`, v0 afterwards.
class PulseWaveform final : public Waveform {
public:
    struct Spec {
        double v0 = 0.0;
        double v1 = 1.0;
        double delay = 0.0;     ///< start of the rising edge
        double riseTime = 0.0;  ///< 0 means an ideal step
        double width = 0.0;     ///< time at v1 between edges
        double fallTime = 0.0;
        EdgeShape shape = EdgeShape::Smoothstep;
    };

    explicit PulseWaveform(const Spec& spec);

    double value(double t) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;
    void describe(std::ostream& os) const override;

    const Spec& spec() const { return spec_; }

private:
    Spec spec_;
};

}  // namespace shtrace
