// shtrace -- piecewise-linear waveform (SPICE PWL source).
#pragma once

#include <vector>

#include "shtrace/waveform/waveform.hpp"

namespace shtrace {

class PwlWaveform final : public Waveform {
public:
    struct Point {
        double t;
        double v;
    };

    /// Points must be strictly increasing in time; at least one required.
    /// Value is held constant before the first and after the last point.
    explicit PwlWaveform(std::vector<Point> points);

    double value(double t) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;
    void describe(std::ostream& os) const override;

    const std::vector<Point>& points() const { return points_; }

private:
    std::vector<Point> points_;
};

}  // namespace shtrace
