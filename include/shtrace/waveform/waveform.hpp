// shtrace -- time-domain source waveforms.
//
// Waveforms drive independent sources. Two features matter for this library
// beyond plain value(t):
//
//  * breakpoints: the adaptive transient stepper must land exactly on corner
//    times of piecewise waveforms or the local truncation error estimate
//    (and hence h(tau_s, tau_h)) picks up spurious noise;
//  * skew parametrization: the data waveform u_d(t, tau_s, tau_h) exposes
//    the analytic derivatives z_s = du/dtau_s and z_h = du/dtau_h needed by
//    the forward sensitivity recurrences (paper eqs. 7-13). Those live on
//    the SkewParametricWaveform subinterface.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

namespace shtrace {

/// Identifies which skew parameter a derivative is taken with respect to.
enum class SkewParam {
    Setup,  ///< tau_s: data 50% leading edge precedes the clock edge by tau_s
    Hold,   ///< tau_h: data 50% trailing edge follows the clock edge by tau_h
};

class Waveform {
public:
    virtual ~Waveform() = default;

    /// Source value at time t (volts or amperes, per owning device).
    virtual double value(double t) const = 0;

    /// Appends every non-smooth point of the waveform inside (t0, t1) to
    /// `out`. Default: none (smooth waveform).
    virtual void breakpoints(double t0, double t1,
                             std::vector<double>& out) const;

    /// Writes a one-line canonical description: waveform type followed by
    /// every parameter that influences value(t), numbers in hex-float
    /// (util/hexfloat.hpp). The persistent store hashes this text as part
    /// of a circuit's identity, so equal descriptions MUST imply equal
    /// u(t) -- pure virtual to keep new waveforms from silently aliasing
    /// in the cache. Runtime coordinates (the data pulse's current skews)
    /// are excluded by contract: they are inputs of h, not circuit state.
    virtual void describe(std::ostream& os) const = 0;
};

/// A waveform parameterized by setup/hold skews, with analytic derivatives.
class SkewParametricWaveform : public Waveform {
public:
    virtual void setSkews(double setupSkew, double holdSkew) = 0;
    virtual double setupSkew() const = 0;
    virtual double holdSkew() const = 0;

    /// d value(t) / d tau_p at the current skews (z_s or z_h in the paper).
    virtual double skewDerivative(double t, SkewParam p) const = 0;
};

/// Constant value (DC source).
class DcWaveform final : public Waveform {
public:
    explicit DcWaveform(double level) : level_(level) {}
    double value(double) const override { return level_; }
    void describe(std::ostream& os) const override;
    double level() const { return level_; }

private:
    double level_;
};

/// Edge interpolation shape for ramped waveforms.
enum class EdgeShape {
    Linear,      ///< SPICE-style linear ramp (C0)
    Smoothstep,  ///< 3u^2-2u^3 ramp (C1) -- default, keeps h smooth in tau
};

/// Normalized edge profile: s(u) for u clamped to [0,1], plus its slope.
/// Exposed for tests and for waveform implementations.
double edgeProfile(EdgeShape shape, double u);
double edgeProfileSlope(EdgeShape shape, double u);

}  // namespace shtrace
