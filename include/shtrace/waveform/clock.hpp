// shtrace -- periodic clock waveform u_c(t).
//
// Matches the paper's validation setup: period 10 ns, logic levels 0 V /
// 2.5 V, initial delay 1 ns, 0.1 ns rise/fall -> active (rising) edges at
// 1 ns, 11 ns, 21 ns, ... The C2MOS register additionally needs an inverted
// clock delayed by 0.3 ns, hence the `inverted` flag and arbitrary delay.
#pragma once

#include "shtrace/waveform/waveform.hpp"

namespace shtrace {

class ClockWaveform final : public Waveform {
public:
    struct Spec {
        double v0 = 0.0;        ///< logic-low level
        double v1 = 2.5;        ///< logic-high level
        double period = 10e-9;
        double delay = 1e-9;    ///< time of the first rising-edge start
        double riseTime = 0.1e-9;
        double fallTime = 0.1e-9;
        double dutyCycle = 0.5;  ///< fraction of period at v1 (50% points)
        bool inverted = false;   ///< swap v0/v1 (for clk-bar generation)
        EdgeShape shape = EdgeShape::Smoothstep;
    };

    explicit ClockWaveform(const Spec& spec);

    double value(double t) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;
    void describe(std::ostream& os) const override;

    /// Time of the 50% point of the k-th rising edge (k = 0, 1, ...).
    /// For an inverted clock this is still the k-th rising edge of the
    /// UNDERLYING (non-inverted) clock, i.e. the shared timing reference.
    double risingEdgeMidpoint(int k) const;

    const Spec& spec() const { return spec_; }

private:
    /// Phase-folded waveform of the non-inverted clock at local time
    /// tau in [0, period).
    double basePhaseValue(double tau) const;

    Spec spec_;
};

}  // namespace shtrace
