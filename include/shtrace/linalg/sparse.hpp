// shtrace -- compressed-sparse-column storage for MNA systems.
//
// The sparsity pattern of an MNA Jacobian is FIXED once the circuit is
// finalized: devices stamp the same (row, col) positions at every (x, t),
// only the values change. SparsePattern captures that structure once
// (sorted CSC with the full diagonal always present, so the gmin leak and
// the pivot slots exist structurally), and SparseMatrixCsc is a values
// array over a shared pattern. G, C, and the step Jacobian a*C + G of one
// circuit all share ONE pattern object, which makes the Jacobian
// combination an elementwise operation over aligned values arrays and lets
// devices stamp straight into CSC storage through a precomputed
// stamp->nonzero index map (Assembler).
//
// MNA rows hold a handful of nonzeros (a MOSFET couples 4 terminals), so
// indexOf() is a binary search over a short sorted column: cheap enough for
// the assembly hot path without an extra per-device cursor cache.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "shtrace/linalg/matrix.hpp"
#include "shtrace/linalg/vector.hpp"

namespace shtrace {

class SparsePattern {
public:
    /// Builds the pattern from (row, col) stamp positions. Duplicates are
    /// merged; the full diagonal is added unconditionally (gmin slots,
    /// pivot slots). Indices must lie in [0, n).
    SparsePattern(std::size_t n, std::vector<std::pair<int, int>> entries);

    std::size_t dimension() const noexcept { return n_; }
    std::size_t nonZeros() const noexcept { return rowIdx_.size(); }

    /// colPtr()[j] .. colPtr()[j+1] indexes column j's slice of rowIdx().
    const std::vector<int>& colPtr() const noexcept { return colPtr_; }
    /// Row indices, sorted ascending within each column.
    const std::vector<int>& rowIdx() const noexcept { return rowIdx_; }

    /// Nonzero index of (row, col), or -1 when the position is not in the
    /// pattern (binary search within the column).
    int indexOf(int row, int col) const noexcept;

    /// Nonzero index of (i, i); the diagonal is always present.
    int diagonalIndex(std::size_t i) const noexcept {
        return diag_[i];
    }

private:
    std::size_t n_ = 0;
    std::vector<int> colPtr_;
    std::vector<int> rowIdx_;
    std::vector<int> diag_;
};

/// Values over a shared immutable pattern. Copying a SparseMatrixCsc copies
/// the values and shares the pattern, so the transient engine's history
/// rotation and the adjoint tape stay cheap.
class SparseMatrixCsc {
public:
    SparseMatrixCsc() = default;
    explicit SparseMatrixCsc(std::shared_ptr<const SparsePattern> pattern)
        : pattern_(std::move(pattern)),
          values_(pattern_->nonZeros(), 0.0) {}

    bool bound() const noexcept { return pattern_ != nullptr; }
    const SparsePattern& pattern() const { return *pattern_; }
    const std::shared_ptr<const SparsePattern>& patternPtr() const noexcept {
        return pattern_;
    }
    std::size_t dimension() const noexcept {
        return pattern_ != nullptr ? pattern_->dimension() : 0;
    }

    double* values() noexcept { return values_.data(); }
    const double* values() const noexcept { return values_.data(); }
    std::size_t nonZeros() const noexcept { return values_.size(); }

    void setZero() noexcept {
        for (double& v : values_) {
            v = 0.0;
        }
    }

    /// values[nz] += v, where nz came from SparsePattern::indexOf.
    void addAt(int nz, double v) noexcept {
        values_[static_cast<std::size_t>(nz)] += v;
    }

    SparseMatrixCsc& operator*=(double s) noexcept {
        for (double& v : values_) {
            v *= s;
        }
        return *this;
    }

    /// Elementwise add; both operands must share the SAME pattern object
    /// (that is the invariant the per-circuit union pattern guarantees).
    SparseMatrixCsc& operator+=(const SparseMatrixCsc& o);

    /// y += s * (A x), without allocating.
    void multiplyAccumulate(const Vector& x, double s, Vector& y) const;
    /// y = A^T x.
    Vector multiplyTransposed(const Vector& x) const;

    Matrix toDense() const;

private:
    std::shared_ptr<const SparsePattern> pattern_;
    std::vector<double> values_;
};

}  // namespace shtrace
