// shtrace -- small dense vector for MNA state and residuals.
//
// Circuit systems in this library are tiny (tens of unknowns); a simple
// contiguous double vector with value semantics is the right tool. All
// arithmetic is bounds-checked in the sense that dimension mismatches throw.
#pragma once

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "shtrace/util/error.hpp"

namespace shtrace {

class Vector {
public:
    Vector() = default;
    explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
    Vector(std::initializer_list<double> values) : data_(values) {}

    std::size_t size() const noexcept { return data_.size(); }
    bool empty() const noexcept { return data_.empty(); }

    double& operator[](std::size_t i) { return data_[i]; }
    double operator[](std::size_t i) const { return data_[i]; }

    double& at(std::size_t i) {
        require(i < size(), "Vector::at index ", i, " out of range ", size());
        return data_[i];
    }
    double at(std::size_t i) const {
        require(i < size(), "Vector::at index ", i, " out of range ", size());
        return data_[i];
    }

    double* data() noexcept { return data_.data(); }
    const double* data() const noexcept { return data_.data(); }

    auto begin() noexcept { return data_.begin(); }
    auto end() noexcept { return data_.end(); }
    auto begin() const noexcept { return data_.begin(); }
    auto end() const noexcept { return data_.end(); }

    void resize(std::size_t n, double fill = 0.0) { data_.resize(n, fill); }
    void setZero() noexcept {
        for (double& v : data_) {
            v = 0.0;
        }
    }

    Vector& operator+=(const Vector& o);
    Vector& operator-=(const Vector& o);
    Vector& operator*=(double s) noexcept;

    friend Vector operator+(Vector a, const Vector& b) { return a += b; }
    friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
    friend Vector operator*(Vector a, double s) noexcept { return a *= s; }
    friend Vector operator*(double s, Vector a) noexcept { return a *= s; }

    /// a += s * b (axpy).
    void addScaled(double s, const Vector& b);

    double dot(const Vector& o) const;
    double norm2() const noexcept { return std::sqrt(this->dot(*this)); }
    double normInf() const noexcept;

private:
    std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Vector& v);

/// True when every component is finite (no NaN/Inf). The engines call this
/// at layer boundaries -- an accepted transient state or sensitivity that
/// fails the check must be reported, never propagated.
inline bool allFinite(const Vector& v) noexcept {
    for (const double x : v) {
        if (!std::isfinite(x)) {
            return false;
        }
    }
    return true;
}

}  // namespace shtrace
