// shtrace -- small dense row-major matrix for MNA Jacobians.
//
// Dense storage is deliberate: latch MNA systems are ~10-25 unknowns where a
// dense LU beats any sparse machinery. The Assembler stamps directly into
// Matrix via operator()(i, j) +=.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "shtrace/linalg/vector.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    static Matrix identity(std::size_t n);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return data_.empty(); }

    double& operator()(std::size_t i, std::size_t j) {
        return data_[i * cols_ + j];
    }
    double operator()(std::size_t i, std::size_t j) const {
        return data_[i * cols_ + j];
    }

    double& at(std::size_t i, std::size_t j) {
        require(i < rows_ && j < cols_, "Matrix::at (", i, ",", j,
                ") out of range ", rows_, "x", cols_);
        return (*this)(i, j);
    }

    double* rowData(std::size_t i) noexcept { return data_.data() + i * cols_; }
    const double* rowData(std::size_t i) const noexcept {
        return data_.data() + i * cols_;
    }

    void resize(std::size_t rows, std::size_t cols, double fill = 0.0) {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, fill);
    }
    void setZero() noexcept {
        for (double& v : data_) {
            v = 0.0;
        }
    }

    Matrix& operator+=(const Matrix& o);
    Matrix& operator-=(const Matrix& o);
    Matrix& operator*=(double s) noexcept;

    friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
    friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
    friend Matrix operator*(Matrix a, double s) noexcept { return a *= s; }
    friend Matrix operator*(double s, Matrix a) noexcept { return a *= s; }

    /// y = A x.
    Vector multiply(const Vector& x) const;
    /// y += s * (A x), without allocating.
    void multiplyAccumulate(const Vector& x, double s, Vector& y) const;
    /// y = A^T x.
    Vector multiplyTransposed(const Vector& x) const;

    Matrix multiply(const Matrix& b) const;
    Matrix transposed() const;

    double normInf() const noexcept;
    /// max |a_ij - b_ij|.
    double maxAbsDiff(const Matrix& o) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace shtrace
