// shtrace -- Moore-Penrose pseudo-inverse for wide Jacobians.
//
// The interdependent setup/hold problem is one scalar equation in two
// unknowns; its Jacobian H is 1x2. The MPNR update (paper eqs. 23-24) is
//     dtau = -H^+ h,   H^+ = H^T (H H^T)^{-1},
// and the Euler predictor tangent (eq. 16) is the unit null-space vector of
// H. Both are provided here for general 1xm rows plus a small-matrix general
// form used by tests.
#pragma once

#include "shtrace/linalg/matrix.hpp"

namespace shtrace {

/// Moore-Penrose pseudo-inverse of a full-row-rank wide matrix (rows<=cols):
/// A^+ = A^T (A A^T)^{-1}. Throws NumericalError when A A^T is singular.
Matrix pseudoInverseWide(const Matrix& a);

/// MPNR step for a scalar equation h with row Jacobian hRow (1xm):
/// returns -h * hRow^T / (hRow hRow^T). Throws NumericalError when the
/// gradient norm is below `gradTol` (no descent direction available).
Vector moorePenroseStep(const Vector& hRow, double h, double gradTol = 1e-30);

/// Unit tangent induced by a 1x2 Jacobian [dh/ds, dh/dh] (paper eq. 16):
/// T = [-dh/dh, dh/ds] / ||.||. Throws NumericalError on zero gradient.
Vector tangentFromGradient2(double dhds, double dhdh, double gradTol = 1e-30);

}  // namespace shtrace
