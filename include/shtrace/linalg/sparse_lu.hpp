// shtrace -- sparse LU over the fixed MNA pattern.
//
// Left-looking (Gilbert-Peierls) LU with partial pivoting and a
// minimum-degree column pre-ordering on the symmetrized pattern. Because an
// MNA circuit factors the SAME pattern tens of thousands of times per
// contour (only values change), the first factor() stores the complete
// symbolic structure -- column order, pivot sequence, L/U patterns, and the
// per-column topological update schedule -- and every later factor() of a
// matrix on the same pattern REPLAYS that schedule numerically: no reach
// DFS, no pivot search, no allocation. A pivot-health check (the chosen
// pivot must stay within a growth factor of its column maximum) guards the
// replay; when values drift far enough that the stored pivot sequence goes
// bad, factor() falls back to a fresh full factorization transparently.
//
// Like LuFactorization, one instance recycles its buffers across calls and
// must not be shared across threads.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "shtrace/linalg/sparse.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {

class SparseLuFactorization {
public:
    SparseLuFactorization() = default;

    /// Factors PAQ = LU. Returns false when the matrix is numerically
    /// singular (best available pivot below `pivotTol` relative to the
    /// matrix magnitude) -- including structural singularity (a column
    /// whose reach holds no eligible pivot row). On success the instance
    /// is valid() and ready to solve.
    ///
    /// Counted in stats->luFactorizations; a successful numeric replay
    /// additionally counts in stats->sparseRefactorizations.
    bool factor(const SparseMatrixCsc& a, SimStats* stats = nullptr,
                double pivotTol = 1e-14);

    bool valid() const noexcept { return valid_; }
    std::size_t dimension() const noexcept { return n_; }

    /// True when the most recent successful factor() was a numeric replay
    /// of the stored symbolic structure (exposed for tests and benches).
    bool lastFactorWasRefactor() const noexcept { return lastWasRefactor_; }

    Vector solve(const Vector& b, SimStats* stats = nullptr) const;
    void solveInPlace(Vector& b, SimStats* stats = nullptr) const;
    Vector solveTransposed(const Vector& b, SimStats* stats = nullptr) const;

    /// Crude reciprocal condition estimate: min|pivot| / max|pivot|.
    double reciprocalPivotRatio() const noexcept;

private:
    bool fullFactor(const SparseMatrixCsc& a, double pivotTol);
    bool refactor(const SparseMatrixCsc& a, double pivotTol);
    static double maxAbsValue(const SparseMatrixCsc& a) noexcept;

    std::size_t n_ = 0;
    /// Pattern the symbolic structure was computed for; a factor() against
    /// a different pattern object rebuilds everything.
    std::shared_ptr<const SparsePattern> pattern_;

    std::vector<int> colOrder_;  ///< q: step k factors original column q[k]
    std::vector<int> rowPerm_;   ///< p: pivot index k <- original row p[k]
    std::vector<int> pinv_;      ///< original row -> pivot index

    // L (unit diagonal, rows > k) and U (rows < k) by factor column, row
    // indices in PIVOT coordinates. Ui_ keeps each column in the
    // topological order the update loop processed, which is exactly the
    // schedule the numeric refactor replays.
    std::vector<int> lColPtr_, lRowIdx_;
    std::vector<double> lValues_;
    std::vector<int> uColPtr_, uRowIdx_;
    std::vector<double> uValues_;
    std::vector<double> uDiag_;

    // Scratch recycled across factor/solve calls.
    std::vector<double> work_;
    std::vector<int> mark_, stack_, stackPos_, topo_;
    mutable std::vector<double> solveWork_;

    bool valid_ = false;
    bool lastWasRefactor_ = false;
};

/// Fill-reducing ordering: naive minimum degree on the pattern of A + A^T.
/// One-time cost per circuit; exposed for tests.
std::vector<int> minimumDegreeOrder(const SparsePattern& pattern);

}  // namespace shtrace
