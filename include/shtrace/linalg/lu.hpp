// shtrace -- LU factorization with partial pivoting.
//
// The transient engine factors (C/dt + G) once per Newton iteration and then
// reuses the SAME factorization for the sensitivity recurrences (paper
// eqs. 11/13) -- that reuse is the core efficiency argument of the method,
// so the factorization object is explicitly separable from the solve.
//
// A LuFactorization recycles its internal storage across factor() and
// solve() calls (no allocations once warmed up), which makes concurrent
// solves on ONE object a data race. Each transient engine / batch job owns
// its own instance, so this costs nothing in practice.
#pragma once

#include <cstddef>
#include <vector>

#include "shtrace/linalg/matrix.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {

class LuFactorization {
public:
    LuFactorization() = default;

    /// Factors PA = LU in place (copy of `a` is taken). Returns false when
    /// the matrix is numerically singular (pivot below `pivotTol`).
    bool factor(const Matrix& a, SimStats* stats = nullptr,
                double pivotTol = 1e-14);

    bool valid() const noexcept { return valid_; }
    std::size_t dimension() const noexcept { return lu_.rows(); }

    /// Solves A x = b. Requires valid().
    Vector solve(const Vector& b, SimStats* stats = nullptr) const;
    void solveInPlace(Vector& b, SimStats* stats = nullptr) const;

    /// Solves A^T x = b (used by adjoint-style checks in tests).
    Vector solveTransposed(const Vector& b, SimStats* stats = nullptr) const;

    /// det(A), from the pivots (cheap; for diagnostics/tests only).
    double determinant() const;

    /// Crude reciprocal condition estimate: min|pivot| / max|pivot|.
    double reciprocalPivotRatio() const noexcept;

private:
    Matrix lu_;
    std::vector<std::size_t> perm_;
    // Scratch buffers reused across calls (see the thread-safety note above).
    std::vector<double> scaleBuf_;
    mutable Vector scratch_;
    int permSign_ = 1;
    bool valid_ = false;
};

/// One-shot convenience: solves A x = b, throwing NumericalError when A is
/// singular. Prefer LuFactorization when multiple right-hand sides share A.
Vector solveLinearSystem(const Matrix& a, const Vector& b,
                         SimStats* stats = nullptr);

}  // namespace shtrace
