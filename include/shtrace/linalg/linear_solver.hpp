// shtrace -- pluggable linear-solver backend for the MNA hot path.
//
// Everything downstream of the Assembler (Newton, transient, sensitivity,
// adjoint) talks to two abstractions instead of concrete dense types:
//
//  * SystemMatrix -- a G/C/Jacobian-shaped matrix that is EITHER a dense
//    Matrix or a SparseMatrixCsc over the circuit's fixed union pattern.
//    The operations it exposes are exactly the ones the engines perform
//    (setZero, *= a, += G, diagonal gmin bump, mat-vec accumulate,
//    transpose mat-vec), and in dense mode each delegates verbatim to the
//    pre-existing Matrix call, so dense results stay byte-identical.
//
//  * LinearSolver -- factor / solve / solveTransposed over a SystemMatrix.
//    DenseLinearSolver wraps the PR 3 LuFactorization; SparseLinearSolver
//    wraps SparseLuFactorization, whose factor() transparently replays the
//    stored symbolic structure when the pattern repeats (the numeric
//    refactor), preserving the chord-reuse contract: one instance per
//    engine, factor when the Jacobian changes, solve many times.
//
// Backend selection: resolveLinalgBackend maps Auto to Dense below
// kSparseAutoThreshold unknowns and Sparse at or above it, so paper-scale
// latches (~10 unknowns) keep their bit-exact dense trajectories while
// multi-bit register chains get the sparse path automatically.
#pragma once

#include <cstddef>
#include <memory>

#include "shtrace/linalg/lu.hpp"
#include "shtrace/linalg/matrix.hpp"
#include "shtrace/linalg/sparse.hpp"
#include "shtrace/linalg/sparse_lu.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {

/// Which linear-algebra backend an engine should use.
enum class LinalgBackend {
    Auto,    ///< pick by system size (resolveLinalgBackend)
    Dense,   ///< dense Matrix + LuFactorization
    Sparse,  ///< CSC + SparseLuFactorization with numeric refactor
};

/// Auto resolves to Sparse at or above this many unknowns. Chosen from
/// results/bench_sparse.json: below it the dense O(n^3) constant still wins
/// on cache locality; above it fill-in-free sparse factors pull ahead.
inline constexpr std::size_t kSparseAutoThreshold = 48;

/// Resolves Auto against the system size; Dense/Sparse pass through.
LinalgBackend resolveLinalgBackend(LinalgBackend requested,
                                   std::size_t systemSize) noexcept;

/// Stable lowercase name ("auto" / "dense" / "sparse") for cache keys,
/// CLI flags, and diagnostics.
const char* linalgBackendName(LinalgBackend backend) noexcept;

/// A system-sized matrix (G, C, or the step Jacobian a*C + G) in whichever
/// representation the selected backend uses. Copyable: copies share the
/// immutable pattern in sparse mode and duplicate values in both modes,
/// so history rotation and the adjoint tape work unchanged.
class SystemMatrix {
public:
    SystemMatrix() = default;

    /// Rebinds to an n x n dense matrix (zeroed).
    void bindDense(std::size_t n);
    /// Rebinds to CSC values over the circuit's union pattern (zeroed).
    void bindSparse(std::shared_ptr<const SparsePattern> pattern);

    bool bound() const noexcept { return mode_ != Mode::Unbound; }
    bool isDense() const noexcept { return mode_ == Mode::Dense; }
    bool isSparse() const noexcept { return mode_ == Mode::Sparse; }
    std::size_t dimension() const noexcept;

    /// Underlying representation; mode-checked.
    Matrix& dense();
    const Matrix& dense() const;
    SparseMatrixCsc& sparse();
    const SparseMatrixCsc& sparse() const;

    void setZero();
    SystemMatrix& operator*=(double s);
    /// Elementwise add; both sides must be in the same mode (and share the
    /// pattern object in sparse mode).
    SystemMatrix& operator+=(const SystemMatrix& o);
    /// (i, i) += v. The diagonal is structurally present in sparse mode.
    void addToDiagonal(std::size_t i, double v);

    /// y += s * (A x), allocation-free.
    void multiplyAccumulate(const Vector& x, double s, Vector& y) const;
    /// y = A^T x.
    Vector multiplyTransposed(const Vector& x) const;

    /// Dense copy regardless of mode (shooting's monodromy product and
    /// diagnostics; NOT on the transient hot path).
    Matrix toDense() const;

private:
    enum class Mode { Unbound, Dense, Sparse };

    Mode mode_ = Mode::Unbound;
    Matrix dense_;
    SparseMatrixCsc sparse_;
};

/// Factor/solve interface the engines hold. One instance per engine, reused
/// across steps (the implementations recycle their buffers and must not be
/// shared across threads -- same contract as LuFactorization).
class LinearSolver {
public:
    virtual ~LinearSolver() = default;

    /// Factors `a`. Returns false when numerically singular; the instance
    /// is invalid until the next successful factor. Counted in
    /// stats->luFactorizations (sparse numeric replays additionally in
    /// stats->sparseRefactorizations).
    virtual bool factor(const SystemMatrix& a, SimStats* stats = nullptr,
                        double pivotTol = 1e-14) = 0;

    virtual bool valid() const noexcept = 0;
    virtual std::size_t dimension() const noexcept = 0;

    virtual Vector solve(const Vector& b, SimStats* stats = nullptr) const = 0;
    virtual void solveInPlace(Vector& b, SimStats* stats = nullptr) const = 0;
    virtual Vector solveTransposed(const Vector& b,
                                   SimStats* stats = nullptr) const = 0;

    /// Crude reciprocal condition estimate: min|pivot| / max|pivot|.
    virtual double reciprocalPivotRatio() const noexcept = 0;

    /// Which concrete backend this is (never Auto).
    virtual LinalgBackend backend() const noexcept = 0;
};

/// Dense backend: delegates to LuFactorization, preserving its numerics
/// bit-for-bit.
class DenseLinearSolver final : public LinearSolver {
public:
    bool factor(const SystemMatrix& a, SimStats* stats = nullptr,
                double pivotTol = 1e-14) override;
    bool valid() const noexcept override { return lu_.valid(); }
    std::size_t dimension() const noexcept override { return lu_.dimension(); }
    Vector solve(const Vector& b, SimStats* stats = nullptr) const override {
        return lu_.solve(b, stats);
    }
    void solveInPlace(Vector& b, SimStats* stats = nullptr) const override {
        lu_.solveInPlace(b, stats);
    }
    Vector solveTransposed(const Vector& b,
                           SimStats* stats = nullptr) const override {
        return lu_.solveTransposed(b, stats);
    }
    double reciprocalPivotRatio() const noexcept override {
        return lu_.reciprocalPivotRatio();
    }
    LinalgBackend backend() const noexcept override {
        return LinalgBackend::Dense;
    }

    /// The wrapped factorization, for legacy call sites that hand a
    /// LuFactorization across an API boundary (deprecated Newton overloads).
    LuFactorization& lu() noexcept { return lu_; }
    const LuFactorization& lu() const noexcept { return lu_; }

private:
    LuFactorization lu_;
};

/// Sparse backend: first factor() on a pattern performs the full symbolic +
/// numeric factorization; later factor() calls on the SAME pattern object
/// replay the stored schedule (numeric refactor) with automatic fallback.
class SparseLinearSolver final : public LinearSolver {
public:
    bool factor(const SystemMatrix& a, SimStats* stats = nullptr,
                double pivotTol = 1e-14) override;
    bool valid() const noexcept override { return lu_.valid(); }
    std::size_t dimension() const noexcept override { return lu_.dimension(); }
    Vector solve(const Vector& b, SimStats* stats = nullptr) const override {
        return lu_.solve(b, stats);
    }
    void solveInPlace(Vector& b, SimStats* stats = nullptr) const override {
        lu_.solveInPlace(b, stats);
    }
    Vector solveTransposed(const Vector& b,
                           SimStats* stats = nullptr) const override {
        return lu_.solveTransposed(b, stats);
    }
    double reciprocalPivotRatio() const noexcept override {
        return lu_.reciprocalPivotRatio();
    }
    LinalgBackend backend() const noexcept override {
        return LinalgBackend::Sparse;
    }

    /// True when the most recent factor() was a numeric replay.
    bool lastFactorWasRefactor() const noexcept {
        return lu_.lastFactorWasRefactor();
    }

private:
    SparseLuFactorization lu_;
};

/// Creates the solver for a RESOLVED backend (Dense or Sparse; Auto is a
/// caller error -- resolve against the system size first).
std::unique_ptr<LinearSolver> makeLinearSolver(LinalgBackend backend);

}  // namespace shtrace
