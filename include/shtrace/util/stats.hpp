// shtrace -- cost accounting for apples-to-apples method comparisons.
//
// The paper's headline claim is a cost ratio: Euler-Newton curve tracing is
// linear in the number of contour points while brute-force surface generation
// is quadratic. SimStats counts the primitive operations both methods share
// (transient solves, time steps, Newton iterations, LU work) so benches can
// report both wall time and machine-independent operation counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace shtrace {

/// Accumulated cost counters. Engines take a SimStats* (may be null) and
/// increment as they work; callers aggregate across whole experiments.
struct SimStats {
    std::uint64_t transientSolves = 0;    ///< complete transient analyses
    std::uint64_t timeSteps = 0;          ///< accepted time steps
    std::uint64_t rejectedSteps = 0;      ///< steps rejected by LTE control
    std::uint64_t newtonIterations = 0;   ///< nonlinear iterations (all solvers)
    std::uint64_t luFactorizations = 0;
    std::uint64_t luSolves = 0;           ///< back-substitutions (incl. sensitivities)
    std::uint64_t deviceEvaluations = 0;  ///< full-circuit assembly passes
    // Chord-Newton hot-path accounting (transient.cpp): a chord iteration
    // reuses a previously factored Jacobian, so it performs a residual-only
    // assembly (f/q, no G/C restamp) and bypasses one LU factorization.
    std::uint64_t residualOnlyAssemblies = 0;  ///< f/q-only assembly passes
    std::uint64_t chordIterations = 0;     ///< Newton iterations on a reused LU
    std::uint64_t bypassedFactorizations = 0;  ///< factorizations chord avoided
    std::uint64_t sensitivitySteps = 0;   ///< sensitivity recurrence updates
    std::uint64_t hEvaluations = 0;       ///< evaluations of h(tau_s, tau_h)
    std::uint64_t mpnrIterations = 0;     ///< Moore-Penrose Newton iterations
    // Persistent-store accounting (store/): a hit skips all transients for
    // the job, a warm start skips the seed bisection only.
    std::uint64_t cacheHits = 0;          ///< jobs served from the store
    std::uint64_t cacheMisses = 0;        ///< store lookups that computed
    std::uint64_t cacheWarmStarts = 0;    ///< traces seeded from a near-hit
    // Tracer-robustness accounting (chz/tracer.cpp): recovery-policy work
    // and guard rejections, mirrored in TraceDiagnostics per contour.
    std::uint64_t traceNonFiniteRejections = 0;  ///< NaN/Inf met a guard
    std::uint64_t traceTransientRetries = 0;  ///< perturbed-predictor retries
    std::uint64_t tracePlateauReseeds = 0;    ///< pulled-back re-seeds
    std::uint64_t traceStepHalvings = 0;      ///< predictor alpha halvings
    // Sparse-backend accounting (linalg/sparse_lu.cpp, circuit/): a numeric
    // refactor replays the stored pivot sequence instead of re-running the
    // symbolic analysis + pivot search; a batch assembly evaluates all
    // MOSFETs through the SoA evaluator in one pass.
    std::uint64_t sparseRefactorizations = 0;  ///< symbolic-reuse replays
    std::uint64_t batchAssemblies = 0;    ///< SoA batched device passes
    /// Inclusive wall time accumulated via ScopedTimer. Nested timers on
    /// the same accumulator count once (outermost scope only).
    double wallSeconds = 0.0;

    SimStats& operator+=(const SimStats& other) noexcept;
    friend SimStats operator+(SimStats a, const SimStats& b) noexcept {
        a += b;
        return a;
    }

    /// Folds another accumulator into this one. Counter totals are
    /// associative and order-independent; parallel batch drivers accumulate
    /// into per-worker/per-job instances and merge at join, so the hot path
    /// never shares mutable counters across threads.
    void merge(const SimStats& other) noexcept { *this += other; }

    void reset() noexcept { *this = SimStats{}; }
};

std::ostream& operator<<(std::ostream& os, const SimStats& s);

/// Adds the lifetime of the scope to `stats.wallSeconds` (no-op when null).
///
/// Nesting-safe: when a ScopedTimer on the SAME accumulator is already
/// active on this thread (a driver timing a run that calls a sub-driver
/// timing the same SimStats), the inner timer is inert -- only the
/// outermost scope accumulates, so wallSeconds is inclusive wall time,
/// never a double count. Timers on different accumulators nest freely.
/// The active-timer list is thread-local; a timer must be destroyed on
/// the thread that created it (scoped use guarantees this).
class ScopedTimer {
public:
    explicit ScopedTimer(SimStats* stats) noexcept
        : stats_(stats), start_(Clock::now()), prev_(activeHead()) {
        if (stats_ != nullptr && enclosedBy(prev_, stats_)) {
            stats_ = nullptr;  // outer timer on this accumulator owns it
        }
        activeHead() = this;
    }
    ~ScopedTimer() {
        activeHead() = prev_;
        if (stats_ != nullptr) {
            stats_->wallSeconds += elapsedSeconds();
        }
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    double elapsedSeconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// True when an enclosing timer on the same accumulator suppressed
    /// this one (exposed for the regression test).
    bool suppressed() const noexcept { return stats_ == nullptr; }

private:
    using Clock = std::chrono::steady_clock;

    static ScopedTimer*& activeHead() noexcept {
        thread_local ScopedTimer* head = nullptr;
        return head;
    }
    static bool enclosedBy(const ScopedTimer* frame,
                           const SimStats* stats) noexcept {
        for (; frame != nullptr; frame = frame->prev_) {
            if (frame->stats_ == stats) {
                return true;
            }
        }
        return false;
    }

    SimStats* stats_;
    Clock::time_point start_;
    ScopedTimer* prev_;  ///< enclosing timer on this thread (intrusive stack)
};

}  // namespace shtrace
