// shtrace -- cost accounting for apples-to-apples method comparisons.
//
// The paper's headline claim is a cost ratio: Euler-Newton curve tracing is
// linear in the number of contour points while brute-force surface generation
// is quadratic. SimStats counts the primitive operations both methods share
// (transient solves, time steps, Newton iterations, LU work) so benches can
// report both wall time and machine-independent operation counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace shtrace {

/// Accumulated cost counters. Engines take a SimStats* (may be null) and
/// increment as they work; callers aggregate across whole experiments.
struct SimStats {
    std::uint64_t transientSolves = 0;    ///< complete transient analyses
    std::uint64_t timeSteps = 0;          ///< accepted time steps
    std::uint64_t rejectedSteps = 0;      ///< steps rejected by LTE control
    std::uint64_t newtonIterations = 0;   ///< nonlinear iterations (all solvers)
    std::uint64_t luFactorizations = 0;
    std::uint64_t luSolves = 0;           ///< back-substitutions (incl. sensitivities)
    std::uint64_t deviceEvaluations = 0;  ///< full-circuit assembly passes
    // Chord-Newton hot-path accounting (transient.cpp): a chord iteration
    // reuses a previously factored Jacobian, so it performs a residual-only
    // assembly (f/q, no G/C restamp) and bypasses one LU factorization.
    std::uint64_t residualOnlyAssemblies = 0;  ///< f/q-only assembly passes
    std::uint64_t chordIterations = 0;     ///< Newton iterations on a reused LU
    std::uint64_t bypassedFactorizations = 0;  ///< factorizations chord avoided
    std::uint64_t sensitivitySteps = 0;   ///< sensitivity recurrence updates
    std::uint64_t hEvaluations = 0;       ///< evaluations of h(tau_s, tau_h)
    std::uint64_t mpnrIterations = 0;     ///< Moore-Penrose Newton iterations
    // Persistent-store accounting (store/): a hit skips all transients for
    // the job, a warm start skips the seed bisection only.
    std::uint64_t cacheHits = 0;          ///< jobs served from the store
    std::uint64_t cacheMisses = 0;        ///< store lookups that computed
    std::uint64_t cacheWarmStarts = 0;    ///< traces seeded from a near-hit
    // Tracer-robustness accounting (chz/tracer.cpp): recovery-policy work
    // and guard rejections, mirrored in TraceDiagnostics per contour.
    std::uint64_t traceNonFiniteRejections = 0;  ///< NaN/Inf met a guard
    std::uint64_t traceTransientRetries = 0;  ///< perturbed-predictor retries
    std::uint64_t tracePlateauReseeds = 0;    ///< pulled-back re-seeds
    std::uint64_t traceStepHalvings = 0;      ///< predictor alpha halvings
    double wallSeconds = 0.0;             ///< accumulated via ScopedTimer

    SimStats& operator+=(const SimStats& other) noexcept;
    friend SimStats operator+(SimStats a, const SimStats& b) noexcept {
        a += b;
        return a;
    }

    /// Folds another accumulator into this one. Counter totals are
    /// associative and order-independent; parallel batch drivers accumulate
    /// into per-worker/per-job instances and merge at join, so the hot path
    /// never shares mutable counters across threads.
    void merge(const SimStats& other) noexcept { *this += other; }

    void reset() noexcept { *this = SimStats{}; }
};

std::ostream& operator<<(std::ostream& os, const SimStats& s);

/// Adds the lifetime of the scope to `stats.wallSeconds` (no-op when null).
class ScopedTimer {
public:
    explicit ScopedTimer(SimStats* stats) noexcept
        : stats_(stats), start_(Clock::now()) {}
    ~ScopedTimer() {
        if (stats_ != nullptr) {
            stats_->wallSeconds += elapsedSeconds();
        }
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    double elapsedSeconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    SimStats* stats_;
    Clock::time_point start_;
};

}  // namespace shtrace
