// shtrace -- fixed-size worker-pool executor for batch characterization.
//
// The paper's economic motivation is an embarrassingly parallel workload:
// setup/hold is characterized "for every register of every standard cell
// library ... for all PVT corners", and every cell/corner/sample job is
// independent. This executor is the one scheduling primitive all batch
// drivers (characterizeLibrary, sweepPvtCorners, runMonteCarlo, the
// surface grid) share:
//
//   * deterministic result ordering -- job i writes slot i, so results are
//     identical for any thread count;
//   * per-job exception capture -- a poisoned job fails its own row (the
//     failureReason pattern), never the batch;
//   * per-worker/per-job SimStats accumulation merged at join -- no shared
//     mutable counters on the hot path.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "shtrace/util/stats.hpp"

namespace shtrace {

/// How a batch driver spreads its jobs over threads.
struct ParallelOptions {
    /// Worker count; 0 = hardware concurrency, 1 (default) = serial in the
    /// calling thread (no pool, bit-for-bit the historical behaviour).
    int threads = 1;
    /// Jobs claimed per counter grab. 1 (default) balances best when jobs
    /// are heavyweight transients; raise it for many tiny jobs.
    int chunk = 1;
};

/// Observability hook: called after job `jobIndex` (0-based) of
/// `totalJobs` completes. Invocations are serialized under a mutex but may
/// come from any worker thread and in any job order.
using ProgressCallback =
    std::function<void(std::size_t jobIndex, std::size_t totalJobs)>;

/// The worker count parallelRun will actually use: `requested` clamped to
/// [1, jobCount], with 0 resolving to std::thread::hardware_concurrency().
int resolveThreadCount(int requested, std::size_t jobCount) noexcept;

/// Runs body(job, worker) for every job in [0, jobCount) on
/// resolveThreadCount(options.threads, jobCount) workers; worker indices
/// are in [0, threads). Blocks until all jobs finish. The body must not
/// throw: an escaped exception stops the remaining jobs and is rethrown as
/// Error after the join (a defensive net, not a control-flow path -- batch
/// drivers catch per job and stamp failureReason instead).
void parallelRun(std::size_t jobCount,
                 const std::function<void(std::size_t job,
                                          std::size_t worker)>& body,
                 const ParallelOptions& options = {},
                 const ProgressCallback& onJobDone = {});

/// Rows plus the merged cost of producing them. Duck-types as a container
/// (and converts to the row vector) so pre-RunConfig call sites that did
/// `const auto rows = driver(...)` keep compiling.
template <typename Row>
struct BatchResult {
    std::vector<Row> rows;
    /// Merged across jobs in job order: counter totals are identical for
    /// any thread count (wallSeconds is a timing measurement and is not).
    SimStats stats;

    std::size_t size() const { return rows.size(); }
    bool empty() const { return rows.empty(); }
    Row& operator[](std::size_t i) { return rows[i]; }
    const Row& operator[](std::size_t i) const { return rows[i]; }
    typename std::vector<Row>::iterator begin() { return rows.begin(); }
    typename std::vector<Row>::iterator end() { return rows.end(); }
    typename std::vector<Row>::const_iterator begin() const {
        return rows.begin();
    }
    typename std::vector<Row>::const_iterator end() const {
        return rows.end();
    }
    operator const std::vector<Row>&() const { return rows; }  // NOLINT
};

}  // namespace shtrace
