// shtrace -- SI-suffixed engineering number parsing and formatting.
//
// The netlist parser accepts SPICE-style magnitudes ("2.5", "10k", "0.1n",
// "5f", "3meg"); benches format times as "298ps" style strings. Suffix
// matching is case-insensitive and, as in SPICE, any trailing alphabetic
// characters after the suffix are ignored ("10kOhm" == 10e3).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace shtrace {

/// Parses an engineering-notation number. Returns nullopt on malformed input.
/// Recognized suffixes: f p n u m k meg g t (and "mil" = 25.4e-6, as SPICE).
std::optional<double> parseEngineering(std::string_view text);

/// Parses or throws ParseError with the provided line number for context.
double parseEngineeringOrThrow(std::string_view text, int line);

/// Formats a value with an SI suffix and the given significant digits,
/// e.g. formatEngineering(2.98e-10, "s") == "298ps".
std::string formatEngineering(double value, std::string_view unit,
                              int significantDigits = 4);

}  // namespace shtrace
