// shtrace -- exact, deterministic text encoding of doubles.
//
// The persistent store (store/) needs two properties a "%g" style format
// cannot give: byte-identical round trips (deserialize(serialize(x)) == x
// bit for bit) and a canonical spelling (equal bit patterns produce equal
// text, so content hashes are stable). C99 hex-float notation gives both:
// the mantissa is written in base 16, so every finite double has an exact,
// shortest representation that strtod parses back without rounding.
#pragma once

#include <string>

namespace shtrace {

/// Canonical hex-float spelling of `v` (e.g. "0x1.8p+1" for 3.0).
/// Specials are spelled "inf", "-inf" and "nan"; negative zero keeps its
/// sign ("-0x0p+0").
std::string toHexFloat(double v);

/// Parses a toHexFloat() spelling (or any strtod-accepted number).
/// Throws InvalidArgumentError when `text` is not a complete number.
double fromHexFloat(const std::string& text);

}  // namespace shtrace
