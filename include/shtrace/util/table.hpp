// shtrace -- console tables and CSV output for benches and examples.
//
// Benches print paper-style rows; TablePrinter keeps the columns aligned and
// CsvWriter dumps the same data for external plotting (the figures in the
// paper are 2-D curves and 3-D surfaces; the CSV files regenerate them).
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace shtrace {

/// Fixed-column console table. Collects rows of strings, prints with a
/// header rule. Cheap and allocation-heavy by design: used only in benches.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /// Convenience: converts numeric cells with operator<< semantics.
    template <typename... Cells>
    void addRowValues(const Cells&... cells) {
        addRow({toCell(cells)...});
    }

    void print(std::ostream& os) const;

private:
    static std::string toCell(const std::string& s) { return s; }
    static std::string toCell(const char* s) { return s; }
    static std::string toCell(double v);
    static std::string toCell(int v) { return std::to_string(v); }
    static std::string toCell(long v) { return std::to_string(v); }
    static std::string toCell(unsigned long v) { return std::to_string(v); }
    static std::string toCell(unsigned long long v) { return std::to_string(v); }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer; quotes nothing (values here are numbers/identifiers).
class CsvWriter {
public:
    /// Opens `path` for writing; throws Error when the file cannot be opened.
    explicit CsvWriter(const std::string& path);
    ~CsvWriter();
    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

    void writeHeader(std::initializer_list<std::string> names);
    void writeRow(std::initializer_list<double> values);

private:
    struct Impl;
    Impl* impl_;
};

}  // namespace shtrace
