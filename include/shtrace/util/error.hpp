// shtrace -- error handling primitives.
//
// All recoverable failures in the library are reported as exceptions derived
// from shtrace::Error. Numerical non-convergence, which callers routinely
// probe for (e.g. the curve tracer shrinking its predictor step), is reported
// through status-carrying result types instead of exceptions; Error is for
// contract violations and unrecoverable setup problems.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace shtrace {

/// Base class for all shtrace exceptions.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an API is used in violation of its documented contract
/// (bad dimensions, unknown node names, out-of-range arguments, ...).
class InvalidArgumentError : public Error {
public:
    explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing a netlist or waveform specification fails.
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line)
        : Error("parse error (line " + std::to_string(line) + "): " + what),
          line_(line) {}

    int line() const noexcept { return line_; }

private:
    int line_;
};

/// Thrown when a numerical routine cannot proceed at all (singular system
/// with no recovery path, analysis invoked on an empty circuit, ...).
class NumericalError : public Error {
public:
    explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
inline void formatInto(std::ostringstream&) {}

template <typename T, typename... Rest>
void formatInto(std::ostringstream& os, const T& first, const Rest&... rest) {
    os << first;
    formatInto(os, rest...);
}
}  // namespace detail

/// Builds a message from streamable pieces: message("n=", n, " out of range").
template <typename... Args>
std::string message(const Args&... args) {
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

/// Precondition check used throughout the library.
/// Throws InvalidArgumentError when `cond` is false.
template <typename... Args>
void require(bool cond, const Args&... args) {
    if (!cond) {
        throw InvalidArgumentError(message(args...));
    }
}

}  // namespace shtrace
