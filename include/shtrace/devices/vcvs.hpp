// shtrace -- linear voltage-controlled voltage source (SPICE 'E' element).
//
// Useful for behavioral clock buffering in tests and for building idealized
// fixtures; branch equation v(p) - v(n) - gain*(v(cp) - v(cn)) = 0.
#pragma once

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

class Vcvs final : public Device {
public:
    Vcvs(std::string name, NodeId pos, NodeId neg, NodeId ctrlPos,
         NodeId ctrlNeg, double gain);

    int branchCount() const override { return 1; }
    void allocateBranches(BranchAllocator& alloc) override {
        branchRow_ = alloc.allocate();
    }

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;

    double gain() const { return gain_; }

private:
    NodeId pos_;
    NodeId neg_;
    NodeId ctrlPos_;
    NodeId ctrlNeg_;
    double gain_;
    int branchRow_ = -1;
};

}  // namespace shtrace
