// shtrace -- level-1 (Shichman-Hodges) MOSFET.
//
// The registers in the paper's validation (TSPC, C2MOS) are built from
// these. The model includes:
//   * square-law triode/saturation regions with the (1 + lambda*vds) factor
//     applied in BOTH regions, which keeps Id and dId/dVds continuous across
//     the vds = vgs - vt boundary (as SPICE level 1 does);
//   * drain/source swap for vds < 0 (the model is symmetric);
//   * optional body effect: vt = vt0 + gamma*(sqrt(phi - vbs) - sqrt(phi));
//   * Meyer-simplified constant gate capacitances cgs/cgd/cgb plus constant
//     junction capacitances cdb/csb. Constant gate caps are a documented
//     simplification (DESIGN.md): they preserve the latch dynamics that make
//     setup/hold interdependent while keeping q(x) assembly simple; the
//     fully nonlinear q path is exercised by Diode's junction charge.
//
// PMOS devices use the standard polarity trick: all terminal voltages are
// negated, the NMOS equations evaluated, and the resulting current negated.
// Parameters are given as magnitudes for both types.
#pragma once

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

enum class MosfetType { Nmos, Pmos };

struct MosfetParams {
    MosfetType type = MosfetType::Nmos;
    double vt0 = 0.45;      ///< threshold magnitude (V)
    double kp = 115e-6;     ///< process transconductance u0*Cox (A/V^2)
    double lambda = 0.06;   ///< channel-length modulation (1/V)
    double gamma = 0.0;     ///< body-effect coefficient (sqrt(V))
    double phi = 0.65;      ///< surface potential (V)
    double w = 1e-6;        ///< channel width (m)
    double l = 0.25e-6;     ///< channel length (m)
    double cgs = 0.0;       ///< gate-source capacitance (F)
    double cgd = 0.0;       ///< gate-drain capacitance (F)
    double cgb = 0.0;       ///< gate-bulk capacitance (F)
    double cdb = 0.0;       ///< drain-bulk junction capacitance (F)
    double csb = 0.0;       ///< source-bulk junction capacitance (F)

    double beta() const { return kp * w / l; }
};

/// Operating-point summary (exposed for tests and debugging).
struct MosfetOperatingPoint {
    double id = 0.0;   ///< drain current, referenced drain->source (signed)
    double gm = 0.0;   ///< d|id|/dvgs in the normalized frame
    double gds = 0.0;
    double gmb = 0.0;
    bool swapped = false;  ///< true when vds < 0 forced a terminal swap
    int region = 0;        ///< 0 cutoff, 1 triode, 2 saturation
};

class Mosfet final : public Device {
public:
    Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
           NodeId bulk, const MosfetParams& params);

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;

    const MosfetParams& params() const { return params_; }

    /// Computes the DC operating point at the given terminal voltages
    /// (exposed for unit tests; `id` is the current flowing from the actual
    /// drain terminal to the actual source terminal).
    MosfetOperatingPoint operatingPoint(double vd, double vg, double vs,
                                        double vb) const;

private:
    void stampLinearCap(Assembler& out, const Vector& x, NodeId a, NodeId b,
                        double c) const;
    static void stampLinearCapCharge(Assembler& out, const Vector& x, NodeId a,
                                     NodeId b, double c);

    NodeId drain_;
    NodeId gate_;
    NodeId source_;
    NodeId bulk_;
    MosfetParams params_;
};

}  // namespace shtrace
