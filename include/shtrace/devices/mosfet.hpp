// shtrace -- level-1 (Shichman-Hodges) MOSFET.
//
// The registers in the paper's validation (TSPC, C2MOS) are built from
// these. The model includes:
//   * square-law triode/saturation regions with the (1 + lambda*vds) factor
//     applied in BOTH regions, which keeps Id and dId/dVds continuous across
//     the vds = vgs - vt boundary (as SPICE level 1 does);
//   * drain/source swap for vds < 0 (the model is symmetric);
//   * optional body effect: vt = vt0 + gamma*(sqrt(phi - vbs) - sqrt(phi));
//   * Meyer-simplified constant gate capacitances cgs/cgd/cgb plus constant
//     junction capacitances cdb/csb. Constant gate caps are a documented
//     simplification (DESIGN.md): they preserve the latch dynamics that make
//     setup/hold interdependent while keeping q(x) assembly simple; the
//     fully nonlinear q path is exercised by Diode's junction charge.
//
// PMOS devices use the standard polarity trick: all terminal voltages are
// negated, the NMOS equations evaluated, and the resulting current negated.
// Parameters are given as magnitudes for both types.
#pragma once

#include <algorithm>
#include <cmath>

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

enum class MosfetType { Nmos, Pmos };

struct MosfetParams {
    MosfetType type = MosfetType::Nmos;
    double vt0 = 0.45;      ///< threshold magnitude (V)
    double kp = 115e-6;     ///< process transconductance u0*Cox (A/V^2)
    double lambda = 0.06;   ///< channel-length modulation (1/V)
    double gamma = 0.0;     ///< body-effect coefficient (sqrt(V))
    double phi = 0.65;      ///< surface potential (V)
    double w = 1e-6;        ///< channel width (m)
    double l = 0.25e-6;     ///< channel length (m)
    double cgs = 0.0;       ///< gate-source capacitance (F)
    double cgd = 0.0;       ///< gate-drain capacitance (F)
    double cgb = 0.0;       ///< gate-bulk capacitance (F)
    double cdb = 0.0;       ///< drain-bulk junction capacitance (F)
    double csb = 0.0;       ///< source-bulk junction capacitance (F)

    double beta() const { return kp * w / l; }
};

/// Operating-point summary (exposed for tests and debugging).
struct MosfetOperatingPoint {
    double id = 0.0;   ///< drain current, referenced drain->source (signed)
    double gm = 0.0;   ///< d|id|/dvgs in the normalized frame
    double gds = 0.0;
    double gmb = 0.0;
    bool swapped = false;  ///< true when vds < 0 forced a terminal swap
    int region = 0;        ///< 0 cutoff, 1 triode, 2 saturation
};

/// The Shichman-Hodges core, parameterized on scalars so the scalar path
/// (Mosfet::operatingPoint) and the SoA batch path (mosfet_batch.cpp) run
/// the IDENTICAL operation sequence -- batched and per-device evaluation
/// agree bit-for-bit by construction. `sgn` is +1 for NMOS, -1 for PMOS;
/// `beta` is the precomputed kp * w / l.
inline MosfetOperatingPoint shichmanHodgesOp(double sgn, double vt0,
                                             double beta, double lambda,
                                             double gamma, double phi,
                                             double vd, double vg, double vs,
                                             double vb) noexcept {
    MosfetOperatingPoint op;

    // Normalize polarities so the NMOS equations apply.
    double nvd = sgn * vd;
    double nvs = sgn * vs;
    const double nvg = sgn * vg;
    const double nvb = sgn * vb;

    // The level-1 model is symmetric: for vds < 0 exchange drain and source.
    op.swapped = nvd < nvs;
    if (op.swapped) {
        const double tmp = nvd;
        nvd = nvs;
        nvs = tmp;
    }
    const double vgs = nvg - nvs;
    const double vds = nvd - nvs;
    const double vbs = nvb - nvs;

    // Threshold with body effect; clamp the sqrt argument to keep the model
    // defined (and C1) for forward-biased bulk junctions during iterates.
    double vt = vt0;
    double dvtDvbs = 0.0;
    if (gamma > 0.0) {
        const double kMinArg = 1e-4;
        const double arg = std::max(phi - vbs, kMinArg);
        vt = vt0 + gamma * (std::sqrt(arg) - std::sqrt(phi));
        if (phi - vbs > kMinArg) {
            dvtDvbs = -gamma / (2.0 * std::sqrt(arg));
        }
    }

    const double vov = vgs - vt;
    if (vov <= 0.0) {
        op.region = 0;  // cutoff
        return op;
    }
    const double clm = 1.0 + lambda * vds;
    if (vds < vov) {
        op.region = 1;  // triode
        const double shape = vov * vds - 0.5 * vds * vds;
        op.id = beta * shape * clm;
        op.gm = beta * vds * clm;
        op.gds = beta * (vov - vds) * clm + beta * shape * lambda;
    } else {
        op.region = 2;  // saturation
        op.id = 0.5 * beta * vov * vov * clm;
        op.gm = beta * vov * clm;
        op.gds = 0.5 * beta * vov * vov * lambda;
    }
    // dId/dvbs = dId/dvt * dvt/dvbs = -gm * dvt/dvbs.
    op.gmb = -op.gm * dvtDvbs;
    return op;
}

class Mosfet final : public Device {
public:
    Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
           NodeId bulk, const MosfetParams& params);

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void stampPattern(Assembler& out) const override;
    void describe(std::ostream& os) const override;

    const MosfetParams& params() const { return params_; }
    NodeId drain() const noexcept { return drain_; }
    NodeId gate() const noexcept { return gate_; }
    NodeId source() const noexcept { return source_; }
    NodeId bulk() const noexcept { return bulk_; }

    /// Computes the DC operating point at the given terminal voltages
    /// (exposed for unit tests; `id` is the current flowing from the actual
    /// drain terminal to the actual source terminal).
    MosfetOperatingPoint operatingPoint(double vd, double vg, double vs,
                                        double vb) const;

    /// Stamps everything eval() stamps, given an already-computed operating
    /// point for ctx.x (the SoA batch pass; Circuit::assembleBatch).
    void stampWithOp(const EvalContext& ctx, Assembler& out,
                     const MosfetOperatingPoint& op) const;
    /// Residual-only counterpart (evalResidual with a precomputed op).
    void stampResidualWithOp(const EvalContext& ctx, Assembler& out,
                             const MosfetOperatingPoint& op) const;

private:
    void stampLinearCap(Assembler& out, const Vector& x, NodeId a, NodeId b,
                        double c) const;
    static void stampLinearCapCharge(Assembler& out, const Vector& x, NodeId a,
                                     NodeId b, double c);

    NodeId drain_;
    NodeId gate_;
    NodeId source_;
    NodeId bulk_;
    MosfetParams params_;
};

}  // namespace shtrace
