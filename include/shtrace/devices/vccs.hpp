// shtrace -- linear voltage-controlled current source (SPICE 'G' element).
//
// i(pos->neg through the source) = gm * (v(ctrlPos) - v(ctrlNeg)). Useful
// for behavioral models (e.g. clock receivers) and small-signal-style test
// fixtures; no extra unknowns.
#pragma once

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

class Vccs final : public Device {
public:
    Vccs(std::string name, NodeId pos, NodeId neg, NodeId ctrlPos,
         NodeId ctrlNeg, double transconductance);

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;

    double transconductance() const { return gm_; }

private:
    NodeId pos_;
    NodeId neg_;
    NodeId ctrlPos_;
    NodeId ctrlNeg_;
    double gm_;
};

}  // namespace shtrace
