// shtrace -- linear resistor.
#pragma once

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

class Resistor final : public Device {
public:
    Resistor(std::string name, NodeId a, NodeId b, double resistance);

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;

    double resistance() const { return resistance_; }
    NodeId nodeA() const { return a_; }
    NodeId nodeB() const { return b_; }

private:
    NodeId a_;
    NodeId b_;
    double resistance_;
};

}  // namespace shtrace
