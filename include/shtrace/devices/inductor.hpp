// shtrace -- linear inductor (branch-current formulation).
//
// Branch equation row: v(a) - v(b) - L di/dt = 0, realized as
// q[branch] = -L*i and f[branch] = v(a) - v(b) so that d/dt q + f = 0.
#pragma once

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

class Inductor final : public Device {
public:
    Inductor(std::string name, NodeId a, NodeId b, double inductance);

    int branchCount() const override { return 1; }
    void allocateBranches(BranchAllocator& alloc) override {
        branchRow_ = alloc.allocate();
    }

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;

    /// Row of this inductor's current unknown (valid after finalize()).
    int branchRow() const { return branchRow_; }

private:
    NodeId a_;
    NodeId b_;
    double inductance_;
    int branchRow_ = -1;
};

}  // namespace shtrace
