// shtrace -- junction diode with exponential I-V, depletion and diffusion
// charge. Exercises the fully nonlinear q(x) path of the MNA formulation.
#pragma once

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

struct DiodeParams {
    double is = 1e-14;        ///< saturation current (A)
    double n = 1.0;           ///< emission coefficient
    double vt = 0.02585;      ///< thermal voltage kT/q (V)
    double cj0 = 0.0;         ///< zero-bias depletion capacitance (F)
    double vj = 0.8;          ///< junction potential (V)
    double m = 0.5;           ///< grading coefficient
    double fc = 0.5;          ///< forward-bias depletion formula switch
    double tt = 0.0;          ///< transit time for diffusion charge (s)
    double maxExpArg = 40.0;  ///< exponent cap; linearized above (C1)
};

class Diode final : public Device {
public:
    Diode(std::string name, NodeId anode, NodeId cathode,
          const DiodeParams& params = {});

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;

    const DiodeParams& params() const { return params_; }

    /// Static I-V evaluation (exposed for unit tests): current and dI/dV.
    static void currentAndConductance(const DiodeParams& p, double v,
                                      double& current, double& conductance);
    /// Depletion + diffusion charge and incremental capacitance at v.
    static void chargeAndCapacitance(const DiodeParams& p, double v,
                                     double& charge, double& capacitance);

private:
    NodeId anode_;
    NodeId cathode_;
    DiodeParams params_;
};

}  // namespace shtrace
