// shtrace -- independent voltage and current sources.
//
// Sources carry a Waveform (shared_ptr so the characterization layer can
// retune the data source's skews between transients without rebuilding the
// circuit). A source whose waveform is a SkewParametricWaveform contributes
// the b_d * z_s / b_d * z_h terms of the sensitivity recurrences through
// Device::addSkewDerivative.
#pragma once

#include <memory>

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

/// Ideal voltage source between `pos` and `neg`; adds one branch-current
/// unknown. Branch equation: v(pos) - v(neg) - u(t) = 0.
class VoltageSource final : public Device {
public:
    VoltageSource(std::string name, NodeId pos, NodeId neg,
                  std::shared_ptr<const Waveform> waveform);
    /// DC convenience.
    VoltageSource(std::string name, NodeId pos, NodeId neg, double dcValue);

    int branchCount() const override { return 1; }
    void allocateBranches(BranchAllocator& alloc) override {
        branchRow_ = alloc.allocate();
    }

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;
    void addSkewDerivative(double t, SkewParam p, Vector& rhs) const override;
    void addAcStimulus(Vector& rhs) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;

    const Waveform& waveform() const { return *waveform_; }
    /// Row of the source's branch current (positive current flows from
    /// `pos` through the external circuit into `neg`... i.e. the unknown is
    /// the current INTO the positive terminal, SPICE convention).
    int branchRow() const { return branchRow_; }

    /// AC analysis stimulus magnitude (volts); default 0 = quiet source.
    void setAcMagnitude(double magnitude) { acMagnitude_ = magnitude; }
    double acMagnitude() const { return acMagnitude_; }

private:
    NodeId pos_;
    NodeId neg_;
    std::shared_ptr<const Waveform> waveform_;
    int branchRow_ = -1;
    double acMagnitude_ = 0.0;
};

/// Ideal current source: `value(t)` amperes flow from `pos` through the
/// source to `neg` (SPICE convention: positive value pulls current out of
/// the pos node).
class CurrentSource final : public Device {
public:
    CurrentSource(std::string name, NodeId pos, NodeId neg,
                  std::shared_ptr<const Waveform> waveform);
    CurrentSource(std::string name, NodeId pos, NodeId neg, double dcValue);

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;
    void addSkewDerivative(double t, SkewParam p, Vector& rhs) const override;
    void addAcStimulus(Vector& rhs) const override;
    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override;

    const Waveform& waveform() const { return *waveform_; }

    /// AC analysis stimulus magnitude (amperes); default 0 = quiet source.
    void setAcMagnitude(double magnitude) { acMagnitude_ = magnitude; }
    double acMagnitude() const { return acMagnitude_; }

private:
    NodeId pos_;
    NodeId neg_;
    std::shared_ptr<const Waveform> waveform_;
    double acMagnitude_ = 0.0;
};

}  // namespace shtrace
