// shtrace -- linear capacitor.
#pragma once

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace {

class Capacitor final : public Device {
public:
    Capacitor(std::string name, NodeId a, NodeId b, double capacitance);

    void eval(const EvalContext& ctx, Assembler& out) const override;
    void evalResidual(const EvalContext& ctx, Assembler& out) const override;
    void describe(std::ostream& os) const override;

    double capacitance() const { return capacitance_; }

private:
    NodeId a_;
    NodeId b_;
    double capacitance_;
};

}  // namespace shtrace
