// shtrace -- structure-of-arrays batch MOSFET evaluation.
//
// A register chain is mostly MOSFETs, and every assembly pass walks them
// through a virtual eval() that reloads parameters from scattered device
// objects. Circuit::finalize() flattens every Mosfet's model parameters and
// terminal indices into the contiguous arrays below (one-time, immutable,
// shared by all threads); Circuit::assembleBatch() then runs ALL
// Shichman-Hodges evaluations in one tight pass over those arrays before
// stamping results in the original device order.
//
// The compute pass calls the same inline shichmanHodgesOp core the scalar
// path uses, with beta precomputed exactly as params().beta() computes it,
// so batched and scalar assembly agree bit-for-bit -- the batch flag can
// never move a contour.
#pragma once

#include <cstddef>
#include <vector>

#include "shtrace/devices/mosfet.hpp"

namespace shtrace {

/// Immutable SoA view of every Mosfet in a finalized Circuit, in device
/// declaration order. Built once by Circuit::finalize().
struct MosfetBatchPlan {
    // Model parameters, one slot per MOSFET.
    std::vector<double> sgn;     ///< +1 NMOS, -1 PMOS
    std::vector<double> vt0;
    std::vector<double> beta;    ///< kp * w / l, precomputed
    std::vector<double> lambda;
    std::vector<double> gamma;
    std::vector<double> phi;
    // Terminal node indices (-1 = ground), one slot per MOSFET.
    std::vector<int> drain;
    std::vector<int> gate;
    std::vector<int> source;
    std::vector<int> bulk;

    std::vector<const Mosfet*> devices;  ///< slot -> device
    /// Circuit device index -> slot, or -1 for non-MOSFET devices.
    std::vector<int> slotOfDevice;

    std::size_t size() const noexcept { return devices.size(); }
};

/// Per-engine scratch for one batched pass. Owned by whoever drives the
/// assembly (transient engine, bench); never shared across threads.
struct MosfetBatchScratch {
    std::vector<MosfetOperatingPoint> op;
};

/// The SoA compute pass: evaluates every slot's operating point from the
/// contiguous parameter arrays into scratch.op (resized as needed).
void evaluateMosfetBatch(const MosfetBatchPlan& plan, const Vector& x,
                         MosfetBatchScratch& scratch);

}  // namespace shtrace
