// shtrace -- levelized timing graph over a gate-level Design.
//
// One node per NET (every net has exactly one driver -- the parser
// enforces it). Sources are primary inputs and register Q nets; a
// gate-driven net carries one fanin arc per gate `from` clause. The graph
// is levelized ASAP (level = longest fanin chain in arc count), which is
// what makes the arrival/required sweeps embarrassingly parallel WITHIN a
// level and deterministic across thread counts: a node at level L reads
// only nodes at levels < L (forward) or > L (backward), every node writes
// its own slot, and reductions over fanin/fanout arcs run in the fixed
// arc order -- so the floating-point results are bit-identical whether
// one worker or sixteen sweep the level (in the style of libtatum's
// levelized traversals, arXiv:1705.04993's consumer).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "shtrace/sta/netlist.hpp"

namespace shtrace::sta {

/// How the forward sweep seeds a net.
enum class NetKind {
    PrimaryInput,    ///< arrival window from the input statement
    RegisterOutput,  ///< launch: clock skew + characterized clock-to-Q
    GateOutput,      ///< propagated: reduce over fanin arcs
};

struct FaninArc {
    int from = -1;  ///< net index the arc leaves
    double delay = 0.0;
};

struct FanoutArc {
    int to = -1;  ///< net index the arc enters
    double delay = 0.0;
};

struct TimingGraph {
    /// Net index order is first mention in the Design (deterministic).
    std::vector<std::string> netNames;
    std::unordered_map<std::string, int> netIndex;
    std::vector<NetKind> kinds;
    /// Per net: arcs in gate-clause order (empty unless GateOutput).
    std::vector<std::vector<FaninArc>> fanins;
    /// Per net: arcs to every gate input this net feeds, in gate order.
    std::vector<std::vector<FanoutArc>> fanouts;
    /// ASAP level per net; sources are level 0.
    std::vector<int> levels;
    /// Net indices grouped by level, ascending within each group.
    std::vector<std::vector<int>> byLevel;
    /// Index into Design.gates of the driving gate (-1 otherwise).
    std::vector<int> driverGate;
    /// Index into Design.registers whose q drives this net (-1 otherwise).
    std::vector<int> driverRegister;

    int netCount() const { return static_cast<int>(netNames.size()); }

    /// Throws InvalidArgumentError on an unknown net name.
    int indexOf(const std::string& net) const;
};

/// Builds and levelizes the graph. Throws Error on structural problems the
/// parser cannot see locally: a net that is read (gate input, register d,
/// primary output) but never driven, or a combinational cycle (reported
/// with a net on the cycle).
TimingGraph buildTimingGraph(const Design& design);

}  // namespace shtrace::sta
