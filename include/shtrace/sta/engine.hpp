// shtrace -- the SHIA-STA timing engine: contour-aware slack over real
// netlists.
//
// This is the paper's motivating consumer. A classical STA checks every
// register endpoint against ONE (setup, hold) pair -- the contour knee a
// conventional library publishes -- and must flag any path whose hold
// margin falls below that single hold number. The interdependent contour
// says more: a generous setup margin buys a smaller hold requirement, so
// an endpoint the knee flags can be provably safe. The engine runs both
// checks side by side on every endpoint so the recovered pessimism is
// measurable per endpoint and per design (docs/STA.md).
//
// Pipeline:
//   1. one cache-keyed characterization request PER REGISTER through the
//      persistent store (RunConfig.withCacheDir) -- an N-register design
//      is an N-request workload; in-process, concurrent requests for the
//      same cell coalesce onto one leader computation (the serve-tier
//      pattern), and the followers' requests are then served from the
//      store, so a warm store completes the whole design with zero fresh
//      transients;
//   2. levelized forward sweep: earliest/latest arrival per net, levels
//      in sequence, nets within a level in parallel on util/parallel;
//   3. endpoint checks: classical knee pass/fail AND ShiaContour
//      admission with hold-slack decomposition;
//   4. levelized backward sweep: required times (from the classical knee
//      requirements and output constraints) and per-net slacks.
#pragma once

#include <limits>
#include <map>

#include "shtrace/sta/cells.hpp"
#include "shtrace/sta/netlist.hpp"
#include "shtrace/sta/timing_graph.hpp"

namespace shtrace::sta {

/// One register endpoint, checked both ways.
struct EndpointCheck {
    std::string reg;
    std::string cell;
    std::string dNet;
    /// Available setup skew: capture edge (period + skew) minus the
    /// latest arrival at D.
    double availSetup = 0.0;
    /// Available hold skew: earliest next-cycle arrival at D minus the
    /// capture edge skew.
    double availHold = 0.0;
    // Classical check against the knee pair.
    double kneeSetup = 0.0;
    double kneeHold = 0.0;
    bool classicalSetupOk = false;
    bool classicalHoldOk = false;
    double classicalSetupSlack = 0.0;
    double classicalHoldSlack = 0.0;
    // SHIA check against the contour.
    bool shiaOk = false;
    /// False when availSetup is below the contour's setup asymptote (the
    /// budget is infeasible at ANY hold; shiaHoldSlack is meaningless).
    bool shiaFeasible = false;
    double shiaHoldSlack = 0.0;
    /// The headline event: the classical check flags a hold violation,
    /// the contour proves the endpoint safe.
    bool recovered = false;
};

/// Arrival/required/slack view of one net (classical requirements).
struct NetTiming {
    std::string net;
    int level = 0;
    double atMin = 0.0;
    double atMax = 0.0;
    /// +/- infinity when no downstream constraint reaches this net.
    double requiredMax = std::numeric_limits<double>::infinity();
    double requiredMin = -std::numeric_limits<double>::infinity();
    double setupSlack = std::numeric_limits<double>::infinity();
    double holdSlack = std::numeric_limits<double>::infinity();
};

struct StaReport {
    std::string design;
    bool success = false;
    std::string failureReason;
    double clockPeriod = 0.0;
    std::vector<EndpointCheck> endpoints;  ///< register statement order
    std::vector<NetTiming> nets;           ///< net index order
    std::map<std::string, CharacterizedStaCell> cells;
    // Design-level summary.
    std::size_t classicalSetupViolations = 0;
    std::size_t classicalHoldViolations = 0;
    std::size_t shiaViolations = 0;
    std::size_t recoveredEndpoints = 0;
    double worstSetupSlack = std::numeric_limits<double>::infinity();
    double classicalWorstHoldSlack = std::numeric_limits<double>::infinity();
    double shiaWorstHoldSlack = std::numeric_limits<double>::infinity();
    /// Complete cost: characterization requests (cache hits/misses/
    /// transients) plus the sweeps.
    SimStats stats;
};

/// Characterize-then-check. Every register issues its own request; cell
/// resolution failures, characterization failures, and structural graph
/// errors land in failureReason (never thrown). `config` carries threads,
/// cacheDir/cachePolicy, tracer depth, and observability knobs; the
/// per-cell criterion and window come from the library entries
/// (staCellConfig).
StaReport analyzeDesign(const Design& design,
                        const std::vector<StaCell>& library,
                        const RunConfig& config = {});

/// Check against already-characterized cells (tests, pre-baked flows).
/// Every register's cell name must be present in `cells` with a contour.
StaReport analyzeDesign(const Design& design,
                        const std::map<std::string, CharacterizedStaCell>& cells,
                        const RunConfig& config = {});

}  // namespace shtrace::sta
