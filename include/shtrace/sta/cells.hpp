// shtrace -- binding netlist cell names to characterizable register cells.
//
// A netlist `reg ... cell tspc` statement names a cell; StaCell resolves
// that name to a fixture builder plus the characterization criterion and
// skew window the cell's contour lives in. CharacterizedStaCell is what
// the engine actually checks endpoints against: the traced contour (raw
// points for audits, Pareto ShiaContour for queries), the conventional
// knee pair a classical library would publish, and the clock-to-Q values
// that seed launch arrivals.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/run_config.hpp"
#include "shtrace/chz/shia_contour.hpp"

namespace shtrace::sta {

/// One characterizable cell the engine can bind registers to.
struct StaCell {
    std::string name;
    std::function<RegisterFixture()> build;
    CriterionOptions criterion;
    /// Tracer skew window containing the cell's contour (the same windows
    /// the figure benches use; see bench/bench_common.hpp).
    SkewBounds window;
};

/// The built-in bindings: `tspc` (Fig. 6/8 register, 50% criterion),
/// `c2mos` (Fig. 11 register, 90% criterion), and `tspc_x4` (4-bit TSPC
/// register chain, cells/register_chain.hpp -- bit 0 characterized, the
/// rest honest load).
std::vector<StaCell> builtinStaCells();

/// The per-cell RunConfig a characterization request uses: `base` with
/// the cell's criterion and skew window substituted, batch-only knobs
/// (progress callback, observation paths) cleared, and a display label
/// naming the cell. Shared by the engine and any caller that wants to
/// pre-warm the store with cache-key-identical requests.
RunConfig staCellConfig(const RunConfig& base, const StaCell& cell);

/// A characterized cell ready for endpoint checking.
struct CharacterizedStaCell {
    std::string name;
    /// Raw traced contour points -- the ground truth audits check against.
    std::vector<SkewPoint> traced;
    /// Pareto-normalized query view of `traced`.
    std::optional<ShiaContour> contour;
    /// Conventional single (setup, hold) pair: the Pareto knee
    /// (ShiaContour::kneePoint), NOT a raw trace midpoint.
    SkewPoint knee{};
    double clockToQ = 0.0;          ///< characteristic (earliest launch)
    double degradedClockToQ = 0.0;  ///< contour-degraded (latest launch)
};

}  // namespace shtrace::sta
