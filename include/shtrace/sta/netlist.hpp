// shtrace -- gate-level netlist format for the SHIA-STA timing engine.
//
// The characterizer produces interdependent setup/hold contours; this
// module describes the DESIGNS that consume them: sequential netlists of
// combinational gates (pin-to-pin delays) and registers bound to
// characterized cells (sta/cells.hpp). The format is deliberately tiny --
// timing-only, one clock domain -- but structurally honest: arbitrary
// DAGs, reconvergent fanout, register-to-register, input-to-register and
// register-to-output paths all work (docs/STA.md).
//
// Grammar (line oriented; '#' starts a comment; times are SPICE-style
// engineering numbers, "2n" = 2 ns, "250p" = 250 ps):
//
//   design  <name>
//   clock   <name> period <time>
//   input   <net> [arrival <min> <max>]
//   output  <net> [require <time>]
//   gate    <name> <outNet> from <inNet> <delay> [from <inNet> <delay> ...]
//   reg     <name> cell <cellName> d <net> q <net> [skew <time>]
//
// Semantics:
//   * one clock drives every register; its rising edges sit at multiples
//     of `period`, shifted per register by `skew` (clock-tree insertion
//     delay at that register);
//   * `input` arrivals are a [min, max] window relative to the launching
//     clock edge at t = 0 (omitted: data changes exactly at the edge);
//   * `output require` is the latest allowed (max) arrival at a primary
//     output (omitted: one clock period);
//   * a gate contributes one timing arc per `from` clause: the output net
//     settles `delay` after that input settles (max over arcs for late
//     arrivals, min for early);
//   * `reg` binds an instance to a characterized cell by name -- the
//     timing engine resolves the cell through sta/cells.hpp and checks
//     the register's D-pin budget against the cell's traced contour.
#pragma once

#include <string>
#include <vector>

namespace shtrace::sta {

struct PrimaryInput {
    std::string net;
    double arrivalMin = 0.0;  ///< earliest data change after the edge
    double arrivalMax = 0.0;  ///< latest data-settle after the edge
    int line = 0;
};

struct PrimaryOutput {
    std::string net;
    double requiredMax = 0.0;  ///< latest allowed arrival; see hasRequirement
    bool hasRequirement = false;  ///< false: defaults to the clock period
    int line = 0;
};

/// One pin-to-pin timing arc of a gate.
struct GateArc {
    std::string from;
    double delay = 0.0;
};

struct Gate {
    std::string name;
    std::string output;
    std::vector<GateArc> arcs;
    int line = 0;
};

struct Register {
    std::string name;
    std::string cell;  ///< characterized cell binding (sta/cells.hpp)
    std::string d;     ///< data input net (a timing endpoint)
    std::string q;     ///< output net (a timing startpoint)
    double skew = 0.0;  ///< clock arrival offset at this register
    int line = 0;
};

struct Design {
    std::string name;
    std::string clockName;
    double clockPeriod = 0.0;
    std::vector<PrimaryInput> inputs;
    std::vector<PrimaryOutput> outputs;
    std::vector<Gate> gates;
    std::vector<Register> registers;
};

/// Parses the grammar above. Throws ParseError (with the offending line
/// number) on syntax errors and local semantic errors: duplicate names,
/// duplicate net drivers, a register whose d and q coincide, arrival
/// min > max, a missing/duplicate design or clock statement, a
/// non-positive clock period when registers are present.
Design parseDesign(const std::string& text);

/// Reads `path` and parses it. Throws Error when the file is unreadable.
Design loadDesign(const std::string& path);

}  // namespace shtrace::sta
