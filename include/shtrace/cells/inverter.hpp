// shtrace -- small gate-level construction helpers (inverter, transmission
// gate) shared by the register builders.
#pragma once

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/circuit/circuit.hpp"

namespace shtrace {

/// Relative device sizing for a gate.
struct GateSizing {
    double wn = 0.6e-6;
    double wp = 1.2e-6;
    double l = 0.25e-6;
};

/// Adds a static CMOS inverter in->out. `prefix` names the transistors.
void addInverter(Circuit& ckt, const std::string& prefix, NodeId in,
                 NodeId out, NodeId vdd, const ProcessCorner& corner,
                 const GateSizing& sizing = {});

/// Adds a CMOS transmission gate between a and b, conducting when
/// nGate is high / pGate is low. `vdd` supplies the PMOS bulk.
void addTransmissionGate(Circuit& ckt, const std::string& prefix, NodeId a,
                         NodeId b, NodeId nGate, NodeId pGate, NodeId vdd,
                         const ProcessCorner& corner,
                         const GateSizing& sizing = {});

}  // namespace shtrace
