// shtrace -- transmission-gate master/slave D flip-flop (extension cell).
//
// Not part of the paper's validation set; included to demonstrate that the
// characterization machinery is register-architecture agnostic ("the method
// is generally applicable to any kind of latch or register", Conclusions).
// Classic static MS-DFF: TG-input master latch with weak feedback inverter,
// TG-coupled slave latch, positive edge-triggered, Q follows D.
#pragma once

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/cells/register_fixture.hpp"

namespace shtrace {

struct TgDffOptions {
    ProcessCorner corner = ProcessCorner::typical();
    ClockWaveform::Spec clockSpec{};
    double clkBarDelay = 0.05e-9;  ///< local inverter delay modeled as skew

    int activeEdgeIndex = 1;
    double dataTransitionTime = 0.1e-9;
    bool risingData = true;

    double outputLoadCapacitance = 20e-15;
    double internalNodeCapacitance = 1e-15;

    double wn = 0.6e-6;
    double wp = 1.2e-6;
    double l = 0.25e-6;
    /// Feedback ("keeper") inverters are weak by this width ratio.
    double keeperRatio = 0.25;
};

RegisterFixture buildTgDffRegister(const TgDffOptions& options = {});

}  // namespace shtrace
