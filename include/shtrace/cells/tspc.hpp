// shtrace -- positive edge-triggered True Single-Phase Clock register
// (paper Fig. 6; Yuan-Svensson "doubled n-latch" 9T structure plus an
// output inverter).
//
// Stage 1 (p-section, transparent at CLK=0):  x1 = ~D while CLK=0; during
//   CLK=1 the pull-up is clock-gated so x1 can only FALL -- this one-way
//   property is what makes the structure edge-triggered.
// Stage 2 (n-section precharge/evaluate):     y precharges high at CLK=0,
//   evaluates ~x1 at CLK=1 (can only fall during evaluation).
// Stage 3 (hold/evaluate):                    qb = ~y at CLK=1, dynamic
//   hold at CLK=0.
// Output inverter:                            Q = ~qb = D (sampled at the
//   rising edge).
//
// The register exhibits positive setup AND hold times, matching the paper's
// description of the TSPC validation vehicle; see DESIGN.md section 6 for
// the data-polarity discussion (the interdependent race is for a falling
// datum, hence the default risingData = false).
#pragma once

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/waveform/clock.hpp"
#include "shtrace/waveform/data_pulse.hpp"

namespace shtrace {

struct TspcOptions {
    ProcessCorner corner = ProcessCorner::typical();

    /// Clock per the paper: 10 ns period, 1 ns delay, 0.1 ns edges, 2.5 V.
    ClockWaveform::Spec clockSpec{};  // defaults already match

    int activeEdgeIndex = 1;        ///< measure at the 11 ns edge
    double dataTransitionTime = 0.1e-9;
    /// Latch polarity. Default: latch a 1->0 datum. In this topology the
    /// falling datum carries the interesting interdependence: setup is the
    /// race to precharge x1 through the clock-gated PMOS stack before the
    /// edge, hold is the race to finish discharging y through MN3 after the
    /// edge while D stays low -- a late arrival weakens MN3's drive and
    /// demands a longer hold, which is exactly the tradeoff of Fig. 1(b).
    bool risingData = false;

    double outputLoadCapacitance = 20e-15;
    double internalNodeCapacitance = 2e-15;  ///< extra wiring cap per stage

    double wn = 0.6e-6;  ///< NMOS width
    double wp = 1.2e-6;  ///< PMOS width
    double l = 0.25e-6;
};

/// Builds the TSPC register with clock/data sources attached and the
/// circuit finalized.
RegisterFixture buildTspcRegister(const TspcOptions& options = {});

}  // namespace shtrace
