// shtrace -- level-sensitive transparent latch (extension cell).
//
// A TG-input static latch, transparent while the clock is HIGH and opaque
// while it is low. Characterizing a transparent latch with the same flow
// demonstrates the method's generality beyond edge-triggered registers:
// the "active edge" is the CLOSING (falling) edge of the clock -- data
// must set up before the latch closes and hold until the loop takes over.
#pragma once

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/cells/register_fixture.hpp"

namespace shtrace {

struct LatchOptions {
    ProcessCorner corner = ProcessCorner::typical();
    ClockWaveform::Spec clockSpec{};
    double clkBarDelay = 0.05e-9;

    /// Which falling (closing) clock edge the data pulse is centered on.
    int activeEdgeIndex = 1;
    double dataTransitionTime = 0.1e-9;
    bool risingData = true;

    double outputLoadCapacitance = 20e-15;
    double internalNodeCapacitance = 1e-15;

    double wn = 0.6e-6;
    double wp = 1.2e-6;
    double l = 0.25e-6;
    double keeperRatio = 0.25;
};

/// Builds the latch. Note the returned fixture's activeEdgeMidpoint() is
/// the FALLING clock edge (via a duty-cycle-aware computation in the
/// builder, stored through the fixture's clock handle and edge index
/// convention: the data pulse is already centered on the closing edge).
RegisterFixture buildTransparentLatch(const LatchOptions& options = {});

}  // namespace shtrace
