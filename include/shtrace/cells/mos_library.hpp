// shtrace -- process corner description and MOSFET parameter generation.
//
// The paper characterizes registers at 2.5 V logic levels on an unnamed
// process; we use a generic 0.25 um-class level-1 parameter set whose cell
// delays land in the same few-hundred-ps regime. The corner knobs (supply,
// threshold shift, mobility scale, temperature) feed the PVT sweep harness
// that the paper's introduction motivates (characterization "for all PVT
// corners").
#pragma once

#include <string>

#include "shtrace/devices/mosfet.hpp"

namespace shtrace {

struct ProcessCorner {
    std::string name = "TT";
    double vdd = 2.5;

    // Threshold magnitudes (V).
    double vtn = 0.45;
    double vtp = 0.50;
    // Process transconductance u0*Cox (A/V^2).
    double kpn = 60e-6;
    double kpp = 25e-6;
    // Channel-length modulation (1/V).
    double lambdaN = 0.06;
    double lambdaP = 0.10;
    // Gate oxide capacitance per area (F/m^2) and overlap cap per width (F/m).
    double coxPerArea = 8e-3;
    double overlapCapPerWidth = 4e-10;
    // Simplified junction capacitance per device width (F/m).
    double junctionCapPerWidth = 8e-10;

    static ProcessCorner typical();
    /// Fast corner: lower |vt|, higher mobility, higher vdd.
    static ProcessCorner fast();
    /// Slow corner: higher |vt|, lower mobility, lower vdd.
    static ProcessCorner slow();

    /// First-order temperature derating from the 27C reference: mobility
    /// ~ (T/300K)^-1.5, |vt| decreasing ~1.5 mV/K.
    ProcessCorner atTemperature(double celsius) const;
};

/// Level-1 parameters for an NMOS/PMOS of the given geometry at a corner,
/// including the Meyer-simplified gate and junction capacitances.
MosfetParams makeNmos(const ProcessCorner& corner, double w, double l);
MosfetParams makePmos(const ProcessCorner& corner, double w, double l);

}  // namespace shtrace
