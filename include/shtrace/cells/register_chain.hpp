// shtrace -- an N-bit TSPC shift-register chain sharing one clock.
//
// Bit 0's data input is the skew-parameterized DataPulse; bit k's data
// input is bit k-1's Q. Every bit is the full 11T TSPC structure of
// tspc.hpp, so the MNA system grows as ~7 nodes per bit (7N + 6 unknowns
// plus three source branch rows) while keeping real latch physics in every
// stamp. This is the scaling vehicle for the sparse-vs-dense backend work
// (docs/LINALG.md): the characterization semantics -- measured output,
// data source, clock handles -- are those of bit 0, identical to a single
// TSPC fixture, so h(tau_s, tau_h) and the paper's contours stay
// meaningful at any chain length; the downstream bits are honest load.
#pragma once

#include "shtrace/cells/tspc.hpp"

namespace shtrace {

struct RegisterChainOptions {
    /// Per-bit TSPC cell parameters (clock, corner, sizes, loads).
    TspcOptions bit;
    /// Chain length N >= 1. N = 1 is topologically a single TSPC register
    /// plus nothing; sizes of interest for the backend benches are
    /// 1, 4, 16, 64.
    int bits = 4;
};

/// Builds the finalized chain. The fixture's q/d/data/clock refer to BIT 0
/// (the characterized register); bits 1..N-1 ride behind it as load.
RegisterFixture buildTspcRegisterChain(const RegisterChainOptions& options = {});

}  // namespace shtrace
