// shtrace -- C2MOS positive edge-triggered master/slave register (paper
// Fig. 11(a)).
//
// Master clocked inverter (transparent at CLK=0): D -> X.
// Slave clocked inverter (transparent at CLK=1): X -> Q.
//
// With ideally complementary clocks the register has zero hold time; the
// paper (and this builder) delays clk-bar by `clkBarDelay` (0.3 ns) after
// clk, creating 0-0 and 1-1 overlap windows that impose a positive hold
// time -- and the false-transition behaviour of Fig. 11(b) where Q reverts
// after reaching 80% of its final value. Accordingly the characterization
// criterion for this register uses 90% of the transition.
#pragma once

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/cells/register_fixture.hpp"

namespace shtrace {

struct C2mosOptions {
    ProcessCorner corner = ProcessCorner::typical();
    ClockWaveform::Spec clockSpec{};
    double clkBarDelay = 0.3e-9;  ///< clk-bar lags clk by this much

    int activeEdgeIndex = 1;
    double dataTransitionTime = 0.1e-9;
    bool risingData = false;  ///< paper uses a high->low data transition

    double outputLoadCapacitance = 20e-15;
    double internalNodeCapacitance = 2e-15;

    double wn = 0.6e-6;
    double wp = 1.2e-6;
    double l = 0.25e-6;
};

RegisterFixture buildC2mosRegister(const C2mosOptions& options = {});

}  // namespace shtrace
