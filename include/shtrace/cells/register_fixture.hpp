// shtrace -- a characterizable register: circuit + timing handles.
//
// Register builders (tspc.hpp, c2mos.hpp, tg_dff.hpp) return this bundle.
// The characterization layer needs: the finalized circuit, the output node,
// the skew-parameterized data source (to retune tau_s/tau_h), the clock
// (for active-edge timing), and the expected output transition levels.
#pragma once

#include <memory>
#include <string>

#include "shtrace/circuit/circuit.hpp"
#include "shtrace/waveform/clock.hpp"
#include "shtrace/waveform/data_pulse.hpp"

namespace shtrace {

struct RegisterFixture {
    std::string name;
    Circuit circuit;

    NodeId q;    ///< observed output node
    NodeId d;    ///< data input node
    NodeId clk;  ///< clock input node

    std::shared_ptr<DataPulse> data;          ///< retunable data source
    std::shared_ptr<ClockWaveform> clock;     ///< main clock
    std::shared_ptr<ClockWaveform> clockBar;  ///< nullptr if unused

    double vdd = 2.5;
    int activeEdgeIndex = 1;  ///< which rising edge latches the measured datum

    /// Expected Q levels for the measured transition (set by the builder
    /// according to the data pulse polarity).
    double qInitial = 0.0;
    double qFinal = 2.5;

    /// For cells whose active (latching) edge is not a rising clock edge
    /// (e.g. the transparent latch closes on the FALLING edge), builders
    /// set the 50% time here; 0 means "use the rising edge".
    double activeEdgeOverride = 0.0;

    /// 50% time of the measured active clock edge.
    double activeEdgeMidpoint() const {
        if (activeEdgeOverride > 0.0) {
            return activeEdgeOverride;
        }
        return clock->risingEdgeMidpoint(activeEdgeIndex);
    }
};

}  // namespace shtrace
