// shtrace -- the characterization-as-a-service request/response schema.
//
// A POST /v1/characterize body names a cell from the in-tree zoo, a model
// card (process corner + temperature), and optional criterion / recipe /
// tracer overrides (docs/SERVE.md documents every field). Parsing is
// STRICT: unknown fields, wrong types, and unknown enum spellings are
// rejected with a 400 rather than silently ignored -- a typo in a knob
// name must never characterize the wrong thing at scale.
//
// Every parsed request canonicalizes to the persistent store's CacheKey
// (store/key.hpp), which is what the service coalesces concurrent
// identical requests on and what makes the store a shared cache tier:
// two requests spelling the same physics hash to the same key no matter
// which fields they left defaulted.
#pragma once

#include <string>

#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/corner_family.hpp"
#include "shtrace/serve/json.hpp"
#include "shtrace/store/key.hpp"

namespace shtrace::serve {

/// Thrown by parseServeRequest on a schema violation; the HTTP layer maps
/// it to a 400 with the message in the error body.
class BadRequestError : public Error {
public:
    explicit BadRequestError(const std::string& what)
        : Error("bad request: " + what) {}
};

/// One admitted characterization job: the built fixture, the resolved run
/// configuration, and the content-addressed identity everything keys on.
struct ServeRequest {
    std::string cell;          ///< zoo name: tspc | c2mos | tg_dff | latch
    std::string label;         ///< display-only provenance (store label)
    int priority = 0;          ///< higher runs first; FIFO within a level
    RegisterFixture fixture;   ///< built from cell + model card
    RunConfig config;          ///< criterion/recipe/tracer after overrides
    store::CacheKey key;       ///< coalescing + store identity

    /// Set when the request carries a "pvtSweep" block: run the corner-
    /// family driver over `sweepAxes` instead of one characterization.
    /// The coalescing key then also covers the grid geometry and surrogate
    /// knobs, so sweeps only coalesce with byte-equivalent sweeps.
    bool sweep = false;
    PvtAxes sweepAxes;
    CornerFixtureBuilder sweepBuilder;  ///< rebuilds the cell per corner
};

/// Parses and validates a request body; builds the fixture and computes
/// the cache key. `cacheDir` (empty = no store tier) is stamped into the
/// config. Throws BadRequestError (schema) or JsonParseError (syntax).
ServeRequest parseServeRequest(const std::string& body,
                               const std::string& cacheDir);

/// How the service disposed of one request -- rendered into the response's
/// "served" block and the live metrics.
struct ServeDisposition {
    bool coalesced = false;    ///< follower: shared a leader's computation
    double queueMillis = 0.0;  ///< admission -> worker pickup
    double computeMillis = 0.0;  ///< worker pickup -> result ready
    /// 32-hex trace id for this request (== X-Request-Id); empty when the
    /// caller predates trace-context wiring (in-process tests).
    std::string requestId;
    bool tracedByClient = false;  ///< trace id adopted from `traceparent`
};

/// Renders the response body for a finished characterization.
/// result.success=false renders ok=false plus the failure reason (still
/// HTTP 200: a clean negative is a result, not a transport error).
std::string renderServeResponse(const ServeRequest& request,
                                const CharacterizeResult& result,
                                const ServeDisposition& disposition);

/// Renders the response body for a finished PVT sweep: a summary block
/// (traced/escalated/surrogate counts, convergence) plus a per-corner
/// disposition array carrying each corner's provenance.
std::string renderPvtSweepResponse(const ServeRequest& request,
                                   const CornerFamilyResult& result,
                                   const ServeDisposition& disposition);

/// Renders an error body: {"error": ...}.
std::string renderServeError(const std::string& what);
/// Same, with the request identity: {"error": ..., "requestId": ...}.
std::string renderServeError(const std::string& what,
                             const std::string& requestId);

}  // namespace shtrace::serve
