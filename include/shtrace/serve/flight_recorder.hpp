// shtrace -- serve flight recorder: the last N requests, always on call.
//
// A fixed-size ring of completed-request records answering "why was this
// characterization slow, and what did it actually do?" without grepping
// logs or re-running anything. Each record carries the request identity
// (the trace id echoed to the client as X-Request-Id), the disposition
// (coalesced / store hit / warm start / sweep), a five-stage wall-time
// breakdown that sums to the recorded wall clock by construction, and a
// SimStats digest of the work performed.
//
// Served at GET /debug/requests (newest first) and
// GET /debug/requests/<id> (full record, 404 on a miss). The ring is
// bounded and mutex-guarded; recording is one short critical section per
// request, far off the solver hot path.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace shtrace::serve {

/// The five serve stages. queueWait/coalesceWait/compute are measured by
/// the service layer; storeRead/storePublish are attributed from inside
/// the characterization drivers via obs::ScopedStageTimer. For a leader,
/// compute is the residual (wall minus the other stages) so the five
/// always sum to wallMillis; for a follower, coalesceWait is the whole
/// wait and the rest are zero.
struct StageTimings {
    double queueWaitMillis = 0.0;
    double coalesceWaitMillis = 0.0;
    double storeReadMillis = 0.0;
    double computeMillis = 0.0;
    double storePublishMillis = 0.0;

    double sumMillis() const {
        return queueWaitMillis + coalesceWaitMillis + storeReadMillis +
               computeMillis + storePublishMillis;
    }
};

/// Cost digest of the work behind one response (zeros for followers that
/// only waited, and for store hits that re-ran nothing).
struct StatsDigest {
    std::uint64_t transientSolves = 0;
    std::uint64_t newtonIterations = 0;
    std::uint64_t hEvaluations = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheWarmStarts = 0;
    double wallSeconds = 0.0;
};

struct RequestRecord {
    std::string id;      ///< 32-hex trace id == X-Request-Id
    std::string spanId;  ///< 16-hex server-side span id
    bool tracedByClient = false;  ///< trace id adopted from `traceparent`
    std::uint64_t sequence = 0;   ///< completion order (recorder-assigned)

    std::string cell;
    std::string key;  ///< store cache key, hex
    int status = 0;
    bool ok = false;
    bool sweep = false;
    bool coalesced = false;
    bool cacheHit = false;
    bool warmStart = false;
    std::string error;  ///< worker exception message, when status == 500

    StageTimings stages;
    double wallMillis = 0.0;  ///< admission -> recorded, server side
    StatsDigest stats;
    long long completedAtNs = 0;  ///< obs::monotonicNanos() at record time
};

class FlightRecorder {
public:
    explicit FlightRecorder(std::size_t capacity);

    /// Appends one completed request, evicting the oldest past capacity.
    /// Assigns and returns the record's sequence number.
    std::uint64_t record(RequestRecord record);

    /// Every retained record, newest first.
    std::vector<RequestRecord> recent() const;
    /// The newest record with this id (a client may reuse a traceparent
    /// across requests; each gets its own record).
    std::optional<RequestRecord> find(const std::string& id) const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /// Lifetime record count (>= size once the ring has wrapped).
    std::uint64_t totalRecorded() const;

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::vector<RequestRecord> ring_;  ///< ring_[total_ % capacity_] is next
    std::uint64_t total_ = 0;
};

/// JSON for one record (the /debug/requests/<id> body).
std::string renderRequestRecord(const RequestRecord& record);
/// JSON listing for /debug/requests: {"capacity":..,"recorded":..,
/// "requests":[...]} newest first, each entry the full record.
std::string renderRequestRecords(const FlightRecorder& recorder);

}  // namespace shtrace::serve
