// shtrace -- the served daemon: HTTP routes over the characterization
// service.
//
// Ties HttpServer (transport) to CharacterizationService (execution) and
// exposes the routes:
//
//   POST /v1/characterize      -- request schema in request.hpp +
//                                 docs/SERVE.md; honors an inbound W3C
//                                 `traceparent` header and echoes the
//                                 request's trace id as X-Request-Id
//   GET  /metrics              -- live Prometheus exposition of the obs
//                                 registry (text/plain; version=0.0.4)
//   GET  /healthz              -- liveness JSON: status/version/uptime/
//                                 queue depth/flight-recorder fill
//                                 (503 + status "draining" mid-drain)
//   GET  /debug/requests       -- flight recorder: last N completed
//                                 requests, newest first
//   GET  /debug/requests/<id>  -- one record by 32-hex request id
//                                 (404 JSON on a miss)
//
// ServedDaemon is usable in-process (tests, the soak bench's fork/exec
// target is a thin main() around it): construct, call run() on a thread,
// shutdown() to drain and stop.
#pragma once

#include <chrono>
#include <string>

#include "shtrace/serve/http.hpp"
#include "shtrace/serve/service.hpp"

namespace shtrace::serve {

struct DaemonOptions {
    int port = 0;  ///< 0 = kernel-assigned ephemeral port (see port())
    ServiceOptions service;
};

class ServedDaemon {
public:
    explicit ServedDaemon(const DaemonOptions& options);

    /// The bound port (resolved when options.port was 0).
    int port() const noexcept { return server_.port(); }

    /// Accept-and-dispatch loop; blocks until shutdown(). Safe to call
    /// from a dedicated thread.
    void run();

    /// Graceful drain: stop admitting work, finish everything in flight,
    /// stop the accept loop. Signal-safe enough for a SIGTERM handler to
    /// trigger via a flag; call it from normal thread context.
    void shutdown();

    CharacterizationService& service() noexcept { return service_; }

    /// Route dispatch, exposed for in-process tests (no sockets needed).
    HttpResponse handle(const HttpRequest& request);

private:
    CharacterizationService service_;
    HttpServer server_;
    /// Construction time, for /healthz's uptimeSeconds.
    std::chrono::steady_clock::time_point started_;
};

}  // namespace shtrace::serve
