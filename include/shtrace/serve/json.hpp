// shtrace -- minimal JSON reader/writer for the serve subsystem.
//
// The daemon's wire format is JSON, but the repo is dependency-free by
// policy, so this is a small in-repo implementation covering exactly what
// the protocol needs: the six JSON value kinds, strict recursive-descent
// parsing with line-accurate errors, and deterministic serialization
// (object keys keep insertion order; doubles round-trip through %.17g).
// It is NOT a general-purpose library: no comments, no trailing commas,
// no \u surrogate pairs beyond the BMP escape itself (kept verbatim as
// UTF-8 passthrough is all the protocol requires).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shtrace/util/error.hpp"

namespace shtrace::serve {

/// Thrown by parseJson on any malformed document.
class JsonParseError : public Error {
public:
    JsonParseError(const std::string& what, std::size_t offset)
        : Error("json: " + what + " (at byte " + std::to_string(offset) +
                ")"),
          offset_(offset) {}
    std::size_t offset() const noexcept { return offset_; }

private:
    std::size_t offset_;
};

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Insertion-ordered object: serialization is deterministic and mirrors
/// the order fields were added (or appeared in the parsed document).
using JsonMember = std::pair<std::string, JsonValue>;

class JsonValue {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(std::nullptr_t) : kind_(Kind::Null) {}  // NOLINT
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
    JsonValue(double n) : kind_(Kind::Number), number_(n) {}  // NOLINT
    JsonValue(int n)  // NOLINT
        : kind_(Kind::Number), number_(static_cast<double>(n)) {}
    JsonValue(std::int64_t n)  // NOLINT
        : kind_(Kind::Number), number_(static_cast<double>(n)) {}
    JsonValue(std::uint64_t n)  // NOLINT
        : kind_(Kind::Number), number_(static_cast<double>(n)) {}
    JsonValue(std::string s)  // NOLINT
        : kind_(Kind::String), string_(std::move(s)) {}
    JsonValue(const char* s) : kind_(Kind::String), string_(s) {}  // NOLINT
    JsonValue(JsonArray a)  // NOLINT
        : kind_(Kind::Array), array_(std::move(a)) {}

    static JsonValue object() {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }
    static JsonValue array() {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    Kind kind() const noexcept { return kind_; }
    bool isNull() const noexcept { return kind_ == Kind::Null; }
    bool isBool() const noexcept { return kind_ == Kind::Bool; }
    bool isNumber() const noexcept { return kind_ == Kind::Number; }
    bool isString() const noexcept { return kind_ == Kind::String; }
    bool isArray() const noexcept { return kind_ == Kind::Array; }
    bool isObject() const noexcept { return kind_ == Kind::Object; }

    /// Typed accessors; throw InvalidArgumentError on a kind mismatch (the
    /// request parser converts these into 400 responses).
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const JsonArray& asArray() const;
    const std::vector<JsonMember>& members() const;

    /// Object field lookup; nullptr when absent (or not an object).
    const JsonValue* find(const std::string& key) const;

    /// Appends/overwrites an object member (object-kind only).
    JsonValue& set(const std::string& key, JsonValue value);
    /// Appends an array element (array-kind only).
    JsonValue& push(JsonValue value);

private:
    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    JsonArray array_;
    std::vector<JsonMember> object_;
};

/// Strict parse of a complete document (trailing whitespace allowed,
/// trailing junk is an error). Throws JsonParseError.
JsonValue parseJson(const std::string& text);

/// Compact serialization (no added whitespace).
std::string writeJson(const JsonValue& value);
/// Pretty serialization (2-space indent) -- for files meant to be read.
std::string writeJsonPretty(const JsonValue& value);

/// Serialization of one string with JSON escaping, including the quotes.
std::string jsonQuote(const std::string& text);

}  // namespace shtrace::serve
