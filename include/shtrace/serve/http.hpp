// shtrace -- dependency-free HTTP/1.1 over POSIX sockets.
//
// Exactly the subset the characterization service needs: Content-Length
// framed requests and responses (no chunked transfer, no TLS), keep-alive
// connections, one OS thread per connection. Characterizations run for
// milliseconds (cache hit) to seconds (cold trace), so per-connection
// threads blocked on a result future are the honest concurrency model --
// the bounded work queue behind the handler, not the socket layer, is
// what limits compute concurrency.
//
// Shutdown contract: stop() closes the listener, wakes every connection
// (reads poll a stop flag on a short timeout), lets each in-flight request
// finish and flush its response, then joins all connection threads. No
// response is ever truncated by shutdown.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shtrace/util/error.hpp"

namespace shtrace::serve {

struct HttpRequest {
    std::string method;   ///< "GET", "POST", ...
    std::string target;   ///< request path incl. query, e.g. "/healthz"
    std::string version;  ///< "HTTP/1.1"
    /// Header field names lowercased (field names are case-insensitive,
    /// RFC 9110); values are trimmed of surrounding whitespace.
    std::map<std::string, std::string> headers;
    std::string body;

    /// Path without the query string.
    std::string path() const;
    const std::string* header(const std::string& lowercaseName) const;
};

struct HttpResponse {
    int status = 200;
    std::string contentType = "application/json";
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    static HttpResponse json(int status, const std::string& body);
    static HttpResponse text(int status, const std::string& body);
};

/// Standard reason phrase for the handful of status codes the service
/// emits; "Unknown" otherwise.
const char* statusText(int status);

/// The application: request in, response out. Runs on a connection
/// thread; may block (the characterize handler waits on a result future).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
public:
    /// Binds and listens on 127.0.0.1:`port` (port 0 picks an ephemeral
    /// port; see port()). Throws Error when the socket cannot be bound.
    explicit HttpServer(std::uint16_t port);
    ~HttpServer();
    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// The bound port (the resolved one when constructed with 0).
    std::uint16_t port() const noexcept { return port_; }

    /// Accept loop: blocks until stop() is called. Each connection gets a
    /// thread running keep-alive request/response cycles through
    /// `handler`. A handler exception produces a 500 response and closes
    /// the connection; it never kills the server.
    void serve(const HttpHandler& handler);

    /// Initiates shutdown: stops accepting, wakes idle keep-alive reads,
    /// and makes serve() return once every in-flight request has been
    /// answered and its connection thread joined. Safe to call from any
    /// thread (including a signal-watcher thread) and idempotent.
    void stop() noexcept;

    /// True once stop() has been requested.
    bool stopping() const noexcept {
        return stop_.load(std::memory_order_acquire);
    }

private:
    /// One live connection: the thread plus a done flag the reaper uses
    /// (a finished thread is still joinable, so joinable() cannot tell
    /// "done" from "running").
    struct Connection {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void handleConnection(int fd, const HttpHandler& handler,
                          const std::shared_ptr<std::atomic<bool>>& done);

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::mutex threadsMutex_;
    std::vector<Connection> connections_;
};

/// Reads one Content-Length framed request from `fd`. Returns false on a
/// clean EOF before any bytes (keep-alive connection closed by peer) and
/// throws Error on a malformed request; `stopFlag` (may be null) aborts a
/// blocked read at the next poll tick, reported as a clean EOF.
bool readHttpRequest(int fd, HttpRequest* request,
                     const std::atomic<bool>* stopFlag);

/// Serializes and writes a response; `closeAfter` emits
/// "Connection: close". Throws Error on a short write.
void writeHttpResponse(int fd, const HttpResponse& response,
                       bool closeAfter);

/// Minimal blocking client for tests, the load driver, and the soak
/// bench: one request per call over a fresh or kept-alive connection.
class HttpClient {
public:
    /// Connects to 127.0.0.1:`port`. Throws Error on refusal.
    HttpClient(std::uint16_t port, int timeoutMillis = 60000);
    ~HttpClient();
    HttpClient(HttpClient&& other) noexcept;
    HttpClient& operator=(HttpClient&&) = delete;
    HttpClient(const HttpClient&) = delete;
    HttpClient& operator=(const HttpClient&) = delete;

    struct Response {
        int status = 0;
        std::map<std::string, std::string> headers;  ///< lowercased names
        std::string body;
    };

    /// Sends one request and blocks for the response (keep-alive: the
    /// connection is reused across calls). `extraHeaders` are emitted
    /// verbatim after Host/Content-Type (e.g. {"traceparent", ...}).
    /// Throws Error on transport failure or timeout.
    Response request(
        const std::string& method, const std::string& target,
        const std::string& body = "",
        const std::string& contentType = "application/json",
        const std::vector<std::pair<std::string, std::string>>&
            extraHeaders = {});

private:
    int fd_ = -1;
};

}  // namespace shtrace::serve
