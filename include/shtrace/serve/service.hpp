// shtrace -- the characterization service: queue, workers, coalescing.
//
// The execution core behind `shtrace-served`, independent of HTTP so
// tests and the soak bench can drive it in-process. Three cooperating
// mechanisms:
//
//   * A bounded PRIORITY queue feeds a fixed worker pool (thread count
//     resolved by util/parallel's rule). Higher `priority` runs first;
//     FIFO within a level (admission sequence number breaks ties).
//     Admission beyond the bound returns 503-with-Retry-After -- the
//     service degrades by shedding load, never by queueing unboundedly.
//
//   * COALESCING: every request canonicalizes to its store CacheKey, and
//     concurrent identical requests collapse onto one computation. The
//     first request (the leader) enqueues a job; followers arriving while
//     it is queued or executing attach to the leader's future, consume no
//     queue slot, and share the result. A 100-client thundering herd on
//     one cell costs exactly one trace.
//
//   * The persistent store (store/cache.hpp) is the cache tier ACROSS
//     restarts and processes: every computation runs with the store
//     mounted, so a repeat of yesterday's request is a hit (zero
//     transients) and a near-miss warm-starts the tracer.
//
// Graceful drain: beginDrain() stops admission (503), every already
// admitted job still runs to completion, and awaitDrain() returns when
// the queue is empty and all workers are idle. No admitted request is
// ever dropped by shutdown.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "shtrace/obs/trace_context.hpp"
#include "shtrace/serve/flight_recorder.hpp"
#include "shtrace/serve/request.hpp"

namespace shtrace::serve {

struct ServiceOptions {
    /// Worker count; 0 = hardware concurrency (util/parallel's rule).
    int threads = 0;
    /// Bound on admitted-but-not-started jobs; beyond it, 503.
    std::size_t queueDepth = 64;
    /// Retry-After hint on 503 responses (seconds).
    int retryAfterSeconds = 1;
    /// Persistent store tier; empty disables it.
    std::string cacheDir;
    /// Completed requests retained for GET /debug/requests.
    std::size_t flightRecorderCapacity = 128;
    /// Slow-request sampler: directory for per-request fine-detail Chrome
    /// traces (empty disables the sampler). Enabling it raises the obs
    /// detail level to Fine for the process.
    std::string slowTraceDir;
    /// How many slowest requests the sampler keeps traces for.
    std::size_t slowTraceCount = 4;
};

/// Monotonic service totals (mirrored into the obs registry as
/// `shtrace_serve_*_total`; this struct is for in-process assertions).
struct ServiceCounters {
    std::uint64_t requests = 0;    ///< POSTs reaching admission
    std::uint64_t ok = 0;          ///< responses with ok=true
    std::uint64_t failed = 0;      ///< responses with ok=false
    std::uint64_t badRequests = 0;
    std::uint64_t rejected = 0;    ///< 503 admission rejections
    std::uint64_t coalesced = 0;   ///< followers sharing a leader
    std::uint64_t computed = 0;    ///< leader computations executed
    std::uint64_t drained = 0;     ///< jobs completed after drain began
    std::uint64_t cacheHits = 0;   ///< computations served by the store
    std::uint64_t warmStarts = 0;  ///< computations tracer-warm-started
    std::uint64_t workerExceptions = 0;  ///< exceptions caught in runJob
};

class CharacterizationService {
public:
    explicit CharacterizationService(const ServiceOptions& options);
    ~CharacterizationService();  ///< drains (all admitted jobs finish)
    CharacterizationService(const CharacterizationService&) = delete;
    CharacterizationService& operator=(const CharacterizationService&) =
        delete;

    /// One HTTP-shaped outcome: status + body (+ Retry-After on 503).
    /// requestId is the 32-hex trace id minted (or adopted from the
    /// inbound `traceparent`) for this request; the HTTP layer echoes it
    /// as X-Request-Id and it resolves at GET /debug/requests/<id>.
    struct Outcome {
        int status = 200;
        std::string body;
        int retryAfterSeconds = 0;  ///< >0: emit a Retry-After header
        std::string requestId;
    };

    /// The whole request lifecycle: parse/validate (400 on schema
    /// errors), admission (503 when draining or the queue is full,
    /// coalescing onto an in-flight twin when one exists), then block
    /// until the result is ready and render it. `traceparent`, when
    /// non-empty and well-formed (W3C), donates the trace id; anything
    /// else mints a fresh one. Called from connection threads;
    /// thread-safe.
    Outcome characterize(const std::string& requestBody,
                         const std::string& traceparent);
    Outcome characterize(const std::string& requestBody) {
        return characterize(requestBody, std::string());
    }

    /// Stops admission. Already admitted jobs keep running.
    void beginDrain();
    /// Blocks until every admitted job has completed and workers have
    /// exited. Idempotent; implies beginDrain().
    void awaitDrain();

    bool draining() const noexcept {
        return draining_.load(std::memory_order_acquire);
    }

    ServiceCounters counters() const;
    /// Admitted-but-not-started jobs right now.
    std::size_t queuedJobs() const;
    int workerThreads() const noexcept { return threads_; }
    const FlightRecorder& flightRecorder() const { return recorder_; }

private:
    struct Job;

    void workerLoop();
    void runJob(const std::shared_ptr<Job>& job);
    void maybeSampleSlowRequest(const RequestRecord& record,
                                const obs::TraceContext& trace);

    ServiceOptions options_;
    int threads_ = 1;
    FlightRecorder recorder_;

    std::mutex slowMutex_;  ///< guards slowKept_ and the sampler's files
    std::vector<std::pair<double, std::string>> slowKept_;  ///< wall, path

    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable drained_;
    struct JobOrder {
        bool operator()(const std::shared_ptr<Job>& a,
                        const std::shared_ptr<Job>& b) const;
    };
    std::priority_queue<std::shared_ptr<Job>,
                        std::vector<std::shared_ptr<Job>>, JobOrder>
        queue_;
    /// Coalescing index: full CacheKey -> in-flight job (queued or
    /// executing). Erased after the result is published.
    std::unordered_map<std::uint64_t, std::shared_ptr<Job>> inflight_;
    std::uint64_t nextSequence_ = 0;
    std::size_t executing_ = 0;
    ServiceCounters counters_;
    std::atomic<bool> draining_{false};
    bool workersJoined_ = false;

    std::vector<std::thread> workers_;
};

}  // namespace shtrace::serve
