// shtrace -- content-addressed on-disk store of characterization results.
//
// One directory, one file per entry, named by the 16-hex-digit content
// address (store/key.hpp). Entries are self-verifying text:
//
//     shtrace-store 1                     magic + format version
//     kind library_row                    payload type tag
//     key 6b1f...                        must match the file name
//     problem 9c2e...                    warm-start family hash
//     label "TSPC_X1"                    display-only provenance
//     payload 12 a3c4...                 line count + FNV-1a of the payload
//     <12 payload lines>                  (store/serialize.hpp formats)
//     end
//
// Loads verify every framing field plus the checksum; ANY mismatch -- a
// truncated write, a flipped bit, a stale format version -- reads as a
// clean miss, never as wrong data or a crash. Writes go to a unique temp
// file and rename into place, so concurrent batch workers publishing
// distinct keys never expose a torn entry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "shtrace/store/policy.hpp"

namespace shtrace::store {

/// One stored result: framing metadata plus the serialized payload text.
struct StoreEntry {
    std::string kind;            ///< payload tag (library_row, pvt_row, ...)
    std::uint64_t key = 0;       ///< content address (file name)
    std::uint64_t problem = 0;   ///< warm-start family hash
    std::string label;           ///< cell/corner name, display only
    std::string payload;         ///< serialized result (serialize.hpp)
};

class ResultStore {
public:
    /// Opens (creating if needed) the store directory. Throws Error when
    /// the directory cannot be created.
    explicit ResultStore(std::string dir);

    const std::string& dir() const { return dir_; }

    /// Loads the entry at `key`; nullopt on miss OR any corruption.
    std::optional<StoreEntry> load(std::uint64_t key) const;

    /// Publishes an entry (atomically: temp file + rename), overwriting
    /// any previous content at the same key.
    void save(const StoreEntry& entry) const;

    /// Every valid entry, sorted by key. Corrupt files are skipped.
    std::vector<StoreEntry> list() const;

    /// Best warm-start candidate: a valid entry with the same problem hash
    /// but a different content address, and a non-empty contour. Prefers
    /// `characterize` / `library_row` kinds (the contour carriers).
    std::optional<StoreEntry> findNearHit(std::uint64_t problem,
                                          std::uint64_t excludeKey) const;

    /// Removes the entry at `key` if present; returns true when removed.
    bool remove(std::uint64_t key) const;

    struct GcReport {
        std::size_t kept = 0;
        std::size_t removed = 0;  ///< corrupt, stale-version, or misnamed
    };
    /// Deletes every .shtr file that does not load cleanly (including
    /// entries written by an older format version).
    GcReport gc() const;

    /// "<16 hex>.shtr"
    static std::string entryFileName(std::uint64_t key);

private:
    std::string pathFor(std::uint64_t key) const;

    std::string dir_;
};

}  // namespace shtrace::store
