// shtrace -- cache policy knob shared by RunConfig and the result store.
//
// Kept in its own tiny header so chz/run_config.hpp can carry the policy
// without pulling the whole store subsystem into every driver header.
#pragma once

namespace shtrace {

/// How a batch driver uses the persistent characterization store.
enum class CachePolicy {
    ReadWrite,  ///< serve hits, warm-start near-hits, save fresh results
    ReadOnly,   ///< serve hits / warm starts but never write to the store
    Refresh,    ///< ignore existing entries, recompute and overwrite
};

}  // namespace shtrace
