// shtrace -- content-addressed cache keys for characterization results.
//
// A cached result is only reusable when EVERY input that shaped it is
// unchanged: the circuit (devices, topology, waveforms), the criterion, the
// simulation recipe, the search/tracer numerics, and the serialization
// format itself. Each of those is rendered to a canonical text block
// (hex-float numbers, fixed field order; see Device::describe and
// Circuit::canonicalDescription) and the concatenation is FNV-1a hashed
// into a 64-bit content address. Any input change flips the hash and the
// lookup misses cleanly -- there is no partial invalidation to get wrong.
//
// Every key carries a second hash, the PROBLEM key, over just the circuit,
// recipe, and the criterion fields that fix the state-transition function
// h(tau_s, tau_h) up to the contour level (everything except the clock-to-Q
// degradation target). Entries sharing a problem key describe contours of
// the same h at nearby levels, so a miss with a problem-key match can
// warm-start the tracer from a cached contour point instead of running the
// seed bisection (SetupKit-style cross-target reuse).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/run_config.hpp"
#include "shtrace/chz/surface_method.hpp"

namespace shtrace::store {

/// Bump on ANY change to the canonical texts or the serialization format;
/// old entries then miss (and `shtrace-store gc` removes them).
/// v3: trace diagnostics block in traced contours, failure reasons on
/// characterize payloads, 21-field stats line, tracer recovery knobs in
/// the canonical tracer text.
/// v4: ordered per-contour event timeline ("timeline" block) appended to
/// every diagnostics block (docs/STORE.md).
/// v5: 23-field stats line (sparseRefactorizations, batchAssemblies) and
/// linalg-backend + batch-evaluation fields in the canonical recipe text.
/// v6: corner_row entry kind (cross-corner families, provenance-flagged)
/// and a provenance line on library_row payloads.
inline constexpr int kFormatVersion = 6;

/// Streaming 64-bit FNV-1a.
class Fnv1a {
public:
    Fnv1a& update(std::string_view text) noexcept {
        for (const char c : text) {
            state_ ^= static_cast<unsigned char>(c);
            state_ *= 1099511628211ull;
        }
        return *this;
    }
    std::uint64_t value() const noexcept { return state_; }

private:
    std::uint64_t state_ = 14695981039346656037ull;
};

/// 16 lowercase hex digits (the store's file-name spelling of a key).
std::string toHexKey(std::uint64_t key);
/// Parses a toHexKey spelling; nullopt on anything else.
std::optional<std::uint64_t> parseHexKey(const std::string& text);

struct CacheKey {
    std::uint64_t full = 0;     ///< content address of the whole input set
    std::uint64_t problem = 0;  ///< warm-start family (see header comment)
};

// Canonical text blocks (deterministic, hex-float numbers). Exposed for
// tests and for `shtrace-store` debugging; the key builders below are what
// the drivers use.
std::string canonicalFixture(const RegisterFixture& fixture);
std::string canonicalCriterion(const CriterionOptions& criterion);
std::string canonicalRecipe(const SimulationRecipe& recipe);
std::string canonicalIndependent(const IndependentOptions& options);
std::string canonicalSeed(const SeedOptions& options);
std::string canonicalTracer(const TracerOptions& options);
std::string canonicalSurfaceOptions(const SurfaceMethodOptions& options);

/// Key for a full characterizeInterdependent run.
CacheKey characterizeKey(const RegisterFixture& fixture,
                         const RunConfig& config);

/// Key for one library row. The cell's own criterion overrides the config
/// one (as characterizeLibrary does); the cell NAME is excluded, so two
/// identically-built cells share one entry.
CacheKey libraryRowKey(const RegisterFixture& fixture,
                       const CriterionOptions& cellCriterion,
                       const RunConfig& config,
                       bool traceContours);

/// Key for an independent-only row (PVT corner or Monte-Carlo sample): the
/// corner's identity is entirely in the built fixture.
CacheKey independentRowKey(const RegisterFixture& fixture,
                           const RunConfig& config);

/// Key for a brute-force surface run.
CacheKey surfaceKey(const RegisterFixture& fixture, const RunConfig& config,
                    const SurfaceMethodOptions& options);

/// Key for one corner of a cross-corner family (corner_family.hpp). The
/// corner's identity is entirely in the built fixture; the driver's
/// surrogate strategy (anchors, tolerance, budget) is deliberately
/// EXCLUDED -- it decides how a row is produced, not what physics it
/// answers. Provenance disambiguates traced vs surrogate payloads at the
/// same key.
CacheKey cornerRowKey(const RegisterFixture& fixture,
                      const RunConfig& config);

}  // namespace shtrace::store
