// shtrace -- versioned, round-trip-exact serialization of result types.
//
// Text-based and line-oriented with a stable field order; every double is
// spelled in hex-float (util/hexfloat.hpp), so deserialize(serialize(x))
// reproduces x BIT FOR BIT -- the property that lets a cache hit promise
// byte-identical rows to the cold run that produced the entry.
//
// Parsers are strict: a wrong tag, short line, or malformed number throws
// StoreFormatError, which the cache layer converts into a clean miss. The
// format is versioned as a whole via store::kFormatVersion (key.hpp);
// changing anything here requires bumping that constant.
#pragma once

#include <string>
#include <vector>

#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/corner_family.hpp"
#include "shtrace/chz/library.hpp"
#include "shtrace/chz/pvt.hpp"
#include "shtrace/chz/surface_method.hpp"
#include "shtrace/store/cache.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace::store {

/// Thrown by every deserializer on malformed input. Derived from Error so
/// unaware callers still see a shtrace exception; the cache layer catches
/// it and treats the entry as a miss.
class StoreFormatError : public Error {
public:
    explicit StoreFormatError(const std::string& what)
        : Error("store format: " + what) {}
};

/// One Monte-Carlo sample's characterized numbers (the per-job unit the MC
/// driver caches; distribution statistics are recomputed from the rows).
struct McSampleRow {
    bool converged = false;
    double setupTime = 0.0;
    double holdTime = 0.0;
    double clockToQ = 0.0;
};

// Payload kind tags (StoreEntry::kind).
inline constexpr const char* kKindCharacterize = "characterize";
inline constexpr const char* kKindLibraryRow = "library_row";
inline constexpr const char* kKindPvtRow = "pvt_row";
inline constexpr const char* kKindMcRow = "mc_row";
inline constexpr const char* kKindSurface = "surface";
inline constexpr const char* kKindCornerRow = "corner_row";

// Serializers produce the entry payload text; deserializers parse it back
// (throwing StoreFormatError on any malformation).
std::string serializeSimStats(const SimStats& stats);
SimStats deserializeSimStats(const std::string& text);

std::string serializeContourPoints(const std::vector<SkewPoint>& points);
std::vector<SkewPoint> deserializeContourPoints(const std::string& text);

std::string serializeCharacterizeResult(const CharacterizeResult& result);
CharacterizeResult deserializeCharacterizeResult(const std::string& text);

std::string serializeLibraryRow(const LibraryRow& row);
LibraryRow deserializeLibraryRow(const std::string& text);

std::string serializePvtRow(const PvtCornerResult& row);
PvtCornerResult deserializePvtRow(const std::string& text);

std::string serializeMcRow(const McSampleRow& row);
McSampleRow deserializeMcRow(const std::string& text);

std::string serializeSurfaceResult(const SurfaceMethodResult& result);
SurfaceMethodResult deserializeSurfaceResult(const std::string& text);

/// One corner of a cross-corner family. Stats/warm-start bookkeeping are
/// run-local and not serialized (a cache hit reports fresh zero-cost
/// stats, like pvt rows); provenance IS serialized, so a surrogate-filled
/// entry stays recognizably surrogate across runs.
std::string serializeCornerRow(const CornerFamilyRow& row);
CornerFamilyRow deserializeCornerRow(const std::string& text);

/// The contour points a cached entry carries: the traced contour for
/// characterize/library_row payloads, empty for everything else (and for
/// payloads that fail to parse). This is what warm starts seed from.
std::vector<SkewPoint> contourOfEntry(const StoreEntry& entry);

/// The cached point nearest to `target` (Euclidean in the skew plane);
/// nullopt for an empty contour.
std::optional<SkewPoint> nearestPoint(const std::vector<SkewPoint>& points,
                                      const SkewPoint& target);

}  // namespace shtrace::store
