// shtrace -- structured event log: one JSON object per line, machine-first.
//
// logEvent() renders a record with a stable field schema and hands the
// finished line to a user-installed sink:
//
//   {"ts":"2026-08-09T12:34:56.789Z","level":"info","event":"serve.request",
//    "trace":"<32 hex>","span":"<16 hex>", ...caller fields...}
//
// Contract:
//   * `ts` (UTC wall clock, millisecond ISO-8601), `level`, and `event` are
//     always present, in that order. `trace`/`span` appear whenever the
//     calling thread carries a request context (trace_context.hpp). Caller
//     fields follow in call order.
//   * Logging is OFF until a sink is installed; the disabled fast path is
//     one relaxed atomic load, so hot kernels may log unconditionally.
//   * The sink returns false to signal saturation (full pipe, closed file).
//     Dropped records are COUNTED, never silently lost: logCounts() exposes
//     emitted/dropped totals and the next successful write is preceded by a
//     synthetic `log.dropped` record carrying the gap size.
//   * One mutex serializes rendering and sink calls: lines never interleave,
//     and the counters stay exact under concurrent writers (tsan-proven in
//     tests/test_request_obs.cpp).
//
// scripts/log_lint.sh checks the emitted stream against this contract.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <string>

namespace shtrace::obs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char* logLevelName(LogLevel level) noexcept;

/// One key/value pair in a log record. Keys must be string literals (the
/// pointer is kept only for the duration of the logEvent call).
class LogField {
public:
    LogField(const char* key, const char* value)
        : key_(key), kind_(Kind::String), text_(value) {}
    LogField(const char* key, const std::string& value)
        : key_(key), kind_(Kind::String), text_(value) {}
    LogField(const char* key, double value)
        : key_(key), kind_(Kind::Number), number_(value) {}
    LogField(const char* key, int value)
        : key_(key), kind_(Kind::Integer), integer_(value) {}
    LogField(const char* key, long value)
        : key_(key), kind_(Kind::Integer), integer_(value) {}
    LogField(const char* key, long long value)
        : key_(key), kind_(Kind::Integer), integer_(value) {}
    LogField(const char* key, unsigned value)
        : key_(key), kind_(Kind::Integer),
          integer_(static_cast<long long>(value)) {}
    LogField(const char* key, unsigned long value)
        : key_(key), kind_(Kind::Integer),
          integer_(static_cast<long long>(value)) {}
    LogField(const char* key, unsigned long long value)
        : key_(key), kind_(Kind::Integer),
          integer_(static_cast<long long>(value)) {}
    LogField(const char* key, bool value)
        : key_(key), kind_(Kind::Boolean), boolean_(value) {}

    void appendTo(std::string* line) const;

private:
    enum class Kind { String, Number, Integer, Boolean };
    const char* key_;
    Kind kind_;
    std::string text_;
    double number_ = 0;
    long long integer_ = 0;
    bool boolean_ = false;
};

/// Receives one finished JSON line (no trailing newline). Returns false when
/// the record could not be written; the logger counts it as dropped.
using LogSink = std::function<bool(const std::string& line)>;

/// Installs the sink and enables logging; a null sink disables it again.
void setLogSink(LogSink sink);
/// Records below `minLevel` are skipped before rendering (default Info).
void setLogLevel(LogLevel minLevel) noexcept;
/// True when a record at `level` would reach the sink -- for callers that
/// want to skip expensive field construction.
bool logEnabled(LogLevel level) noexcept;

/// Renders and emits one record. No-op (one atomic load) when disabled.
void logEvent(LogLevel level, const char* event,
              std::initializer_list<LogField> fields = {});

struct LogCounts {
    std::uint64_t emitted = 0;  ///< caller records accepted by the sink
    std::uint64_t dropped = 0;  ///< caller records the sink refused
};
LogCounts logCounts() noexcept;

/// Convenience sink: appends lines to `stream` and flushes per record, so a
/// crashing daemon keeps its tail. Reports saturation on write failure.
void logToStream(std::FILE* stream);

/// Test helper: uninstalls the sink, restores Info, zeroes the counters.
void resetLogging();

}  // namespace shtrace::obs
