// shtrace -- observability umbrella: spans + metrics + per-run export glue.
#pragma once

#include <string>

#include "shtrace/obs/log.hpp"
#include "shtrace/obs/metrics.hpp"
#include "shtrace/obs/span.hpp"
#include "shtrace/obs/trace_context.hpp"

namespace shtrace::obs {

/// Resets spans and metrics together (quiesced-only). Tests and benches use
/// this between runs so exported counts cover exactly one run.
void clearAll() noexcept;

/// RAII per-run export glue for the batch drivers. Construction enables
/// instrumentation when either path is non-empty (restoring the previous
/// detail level on destruction); finish() -- called once, after the worker
/// pool has joined, with the run's deterministic merged SimStats -- publishes
/// the counters and writes the requested files:
///
///   metricsPath   -> metrics JSON + sibling `.prom` Prometheus exposition
///   spanTracePath -> Chrome trace_event JSON + sibling `.folded` collapsed
///                    stacks
///
/// With both paths empty (the default RunConfig) the whole object is a
/// no-op and instrumentation stays off.
class RunObservation {
public:
    RunObservation(const std::string& metricsPath,
                   const std::string& spanTracePath);
    ~RunObservation();
    RunObservation(const RunObservation&) = delete;
    RunObservation& operator=(const RunObservation&) = delete;

    /// True when a path was configured (instrumentation active).
    bool active() const noexcept { return wanted_; }

    void finish(const SimStats& merged);

private:
    std::string metricsPath_;
    std::string spanTracePath_;
    bool wanted_ = false;
    bool finished_ = false;
    int previousDetail_ = 0;
};

}  // namespace shtrace::obs
