// shtrace -- request-scoped trace context: who asked for this work?
//
// A TraceContext is a W3C-style 128-bit trace id plus a 64-bit span id. The
// serve layer mints one per POST /v1/characterize (or adopts the trace id
// from an inbound `traceparent` header), echoes it back as the request id,
// and threads it through RunConfig into the characterization drivers. Every
// layer below reads the ambient context from a thread-local RequestContext:
// span records stamp it (so a Chrome trace can be filtered to one request),
// log lines attach it, and the serve flight recorder keys on it.
//
// The RequestContext also carries an optional StageAccumulator pointer so
// deep layers (the store read/publish sites in chz/characterize.cpp) can
// attribute wall time to a named request stage without any serve dependency:
// obs sits at the bottom of the link graph, so everything above can reach it.
//
// Everything here is near-free when unused: an invalid context is three
// zero words, the thread-local read is one TLS load, and the stage timer
// no-ops when no accumulator is installed.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace shtrace::obs {

long long monotonicNanos() noexcept;  // span.cpp owns the clock

/// 128-bit trace id (hi/lo) + 64-bit span id. All-zero means "no context".
struct TraceContext {
    std::uint64_t traceHi = 0;
    std::uint64_t traceLo = 0;
    std::uint64_t spanId = 0;

    bool valid() const noexcept { return (traceHi | traceLo) != 0; }
    /// 32 lowercase hex chars; this is the wire request id.
    std::string traceIdHex() const;
    /// 16 lowercase hex chars.
    std::string spanIdHex() const;
    /// `00-<traceIdHex>-<spanIdHex>-01`, the outbound traceparent form.
    std::string traceparent() const;
};

/// Mints a fresh context (nonzero trace and span ids) from a process-local
/// splitmix64 stream seeded once from std::random_device. Lock-free.
TraceContext mintTraceContext() noexcept;

/// Parses a W3C traceparent header (`00-<32 hex>-<16 hex>-<2 hex>`). On a
/// valid header the trace id is adopted verbatim and a fresh span id is
/// minted for our side of the trace; anything malformed (wrong length, bad
/// separators, non-hex, all-zero trace id, version ff) yields a freshly
/// minted context instead. `adopted`, when non-null, reports which happened.
TraceContext adoptOrMintTraceContext(const std::string& traceparent,
                                     bool* adopted = nullptr) noexcept;

// ---------------------------------------------------------------------------
// Stage accounting: wall-time attribution for the serve request breakdown.
// ---------------------------------------------------------------------------

/// Stages accumulated from inside the characterization drivers. The other
/// serve stages (queue-wait, coalesce-wait, compute) are measured at the
/// service layer itself and never flow through the accumulator.
enum class Stage : unsigned {
    StoreRead = 0,  ///< persistent-store lookup + warm-start donor load
    StorePublish,   ///< persistent-store save of a fresh result
};
inline constexpr std::size_t kStageCount = 2;

/// Thread-safe nanosecond tallies per stage; pool workers of one request add
/// concurrently. Plain relaxed atomics: tallies, not synchronization.
class StageAccumulator {
public:
    void add(Stage stage, long long nanos) noexcept {
        ns_[static_cast<unsigned>(stage)].fetch_add(
            nanos, std::memory_order_relaxed);
    }
    long long nanos(Stage stage) const noexcept {
        return ns_[static_cast<unsigned>(stage)].load(
            std::memory_order_relaxed);
    }
    double millis(Stage stage) const noexcept {
        return static_cast<double>(nanos(stage)) / 1e6;
    }

private:
    std::array<std::atomic<long long>, kStageCount> ns_{};
};

// ---------------------------------------------------------------------------
// Ambient per-thread request context.
// ---------------------------------------------------------------------------

struct RequestContext {
    TraceContext trace;
    StageAccumulator* stages = nullptr;
};

/// The calling thread's current context (invalid/null outside a request).
const RequestContext& currentRequestContext() noexcept;

/// Installs a context for the current scope and restores the previous one on
/// destruction. parallelRun() uses this to hand the submitting thread's
/// context to its pool workers.
class ScopedRequestContext {
public:
    explicit ScopedRequestContext(const RequestContext& context) noexcept;
    ~ScopedRequestContext();
    ScopedRequestContext(const ScopedRequestContext&) = delete;
    ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

private:
    RequestContext previous_;
};

/// RAII stage timer: adds its lifetime to the ambient accumulator, or does
/// nothing when the thread is not serving a request.
class ScopedStageTimer {
public:
    explicit ScopedStageTimer(Stage stage) noexcept
        : stages_(currentRequestContext().stages), stage_(stage) {
        if (stages_ != nullptr) {
            startNs_ = monotonicNanos();
        }
    }
    ~ScopedStageTimer() {
        if (stages_ != nullptr) {
            stages_->add(stage_, monotonicNanos() - startNs_);
        }
    }
    ScopedStageTimer(const ScopedStageTimer&) = delete;
    ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

private:
    StageAccumulator* stages_;
    Stage stage_;
    long long startNs_ = 0;
};

}  // namespace shtrace::obs
