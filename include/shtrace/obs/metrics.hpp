// shtrace -- metrics registry: counters, gauges, fixed-bucket histograms.
//
// The registry follows the same sharding discipline as SimStats::merge: each
// thread observes into its own thread-local shard (no atomics, no locks on
// the hot path), and shards are summed under a mutex at export time, after
// the worker pool has joined. Histogram bucket counts are integers and the
// per-job observations are deterministic, so exported counts are identical
// across thread counts -- only wall-time-valued sums vary.
//
// Counters are not observed incrementally: the 21 SimStats fields already
// count every primitive operation deterministically, so drivers publish the
// merged per-run SimStats into the registry once, at join (addRunCounters).
//
// Export formats: Prometheus text exposition (validated in CI by
// scripts/prom_lint.sh) and JSON. Metric names/units are documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shtrace/util/stats.hpp"

namespace shtrace::obs {

/// Fixed-bucket histograms. Buckets are compile-time constants (see
/// metrics.cpp) so shards are plain arrays and merging is index-wise
/// addition.
enum class Hist : unsigned {
    NewtonIterationsPerStep = 0,   ///< full Newton iterations per step solve
    ChordIterationsPerStep,        ///< reused-LU iterations per step solve
    CorrectorIterationsPerPoint,   ///< MPNR iterations per contour point
    SeedEvaluationsPerSearch,      ///< h evaluations per seed bisection
    TransientWallMilliseconds,     ///< wall time of one transient analysis
    ServeRequestMilliseconds,      ///< admission -> response-ready, serve/
    ServeQueueWaitMilliseconds,    ///< admission -> worker pickup, serve/
    ServeCoalesceWaitMilliseconds,   ///< follower wait on an in-flight leader
    ServeStoreReadMilliseconds,      ///< store lookup + warm-start load
    ServeComputeMilliseconds,        ///< leader compute (minus store I/O)
    ServeStorePublishMilliseconds,   ///< store save of a fresh result
    StaRegisterCharacterizeMilliseconds,  ///< one register cell, sta/ engine
    kCount
};

enum class Gauge : unsigned {
    WorkerThreads = 0,  ///< resolved thread count of the last batch run
    BatchJobs,          ///< job count of the last batch run
    ServeQueueDepth,    ///< admitted-not-yet-started requests (serve/)
    ServeInflight,      ///< requests executing on a worker (serve/)
    CornerSurrogateMaxError,  ///< max accepted acquisition score (seconds)
    kCount
};

/// Event counters for the long-running service layer -- unlike the
/// SimStats-backed run counters these are observed incrementally, one
/// event at a time, from the serve hot path (cold: a mutex per request,
/// not per solver iteration). Exported `_total`-suffixed like every
/// counter.
enum class Count : unsigned {
    ServeRequests = 0,   ///< characterize POSTs reaching admission
    ServeResponsesOk,    ///< 200 responses with ok=true
    ServeResponsesFailed,  ///< 200 responses with ok=false (clean negative)
    ServeBadRequests,    ///< 400 schema/parse rejections
    ServeRejected,       ///< 503 admission-control rejections
    ServeCoalesced,      ///< followers attached to an in-flight leader
    ServeComputed,       ///< leader computations executed by a worker
    ServeDrainedJobs,    ///< jobs completed after drain began
    ServeWorkerExceptions,  ///< exceptions caught in the serve worker loop
    CornerAnchorsTraced,     ///< anchor corners fully traced (corner_family)
    CornerEscalated,         ///< corners escalated above tolerance
    CornerSurrogateAccepted, ///< corners filled by the surrogate
    StaEndpointsChecked,     ///< register endpoints evaluated by sta/
    StaEndpointsRecovered,   ///< classical violations the contour cleared
    kCount
};

/// Adds `n` to an event counter (registry mutex; cold path). No-op unless
/// enabled().
void addCount(Count count, std::uint64_t n = 1) noexcept;

/// Records one sample into the calling thread's shard. No-op unless
/// obs::enabled().
void observe(Hist hist, double value) noexcept;

/// Sets a gauge (cold path: once per batch run). No-op unless enabled.
void setGauge(Gauge gauge, double value) noexcept;

/// Publishes a run's merged SimStats into the registry's counters
/// (accumulating across runs). Call once per driver run, after the join,
/// with the deterministic merged stats.
void addRunCounters(const SimStats& stats) noexcept;

struct CounterSnapshot {
    std::string name;  ///< Prometheus name, `_total`-suffixed
    std::string help;
    double value = 0.0;  ///< uint64 counters are exactly representable here
};

struct GaugeSnapshot {
    std::string name;
    std::string help;
    double value = 0.0;
};

struct HistogramSnapshot {
    std::string name;
    std::string help;
    std::vector<double> upperBounds;      ///< finite bucket bounds, ascending
    std::vector<std::uint64_t> counts;    ///< per-bucket (non-cumulative);
                                          ///< size = upperBounds.size() + 1,
                                          ///< last bucket is +Inf
    std::uint64_t totalCount = 0;
    double sum = 0.0;
};

struct MetricsSnapshot {
    std::vector<CounterSnapshot> counters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;
};

/// Merges every shard (quiesced-only, like collectSpans()).
MetricsSnapshot metricsSnapshot();

/// Resets shards, gauges, and accumulated counters. Quiesced-only.
void clearMetrics() noexcept;

/// Prometheus text exposition format.
std::string prometheusText(const MetricsSnapshot& snapshot);
/// JSON mirror of the same snapshot.
std::string metricsJson(const MetricsSnapshot& snapshot);

/// Writes metricsJson() to `jsonPath` and prometheusText() to a sibling
/// path with the extension replaced by `.prom` (appended when `jsonPath`
/// has no `.json` suffix).
void writeMetricsFiles(const std::string& jsonPath);
/// The `.prom` sibling writeMetricsFiles() derives from `jsonPath`.
std::string prometheusPathFor(const std::string& jsonPath);

}  // namespace shtrace::obs
