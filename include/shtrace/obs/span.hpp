// shtrace -- span tracing: where does the time go inside a run?
//
// SimStats answers "how many primitive operations" (the paper's cost-ratio
// claim); spans answer "which phase spent the wall time". A ScopedSpan
// records {name, start, duration, depth} into a thread-local ring buffer on
// destruction -- no heap allocation in steady state, no locks on the hot
// path, and a single relaxed atomic load when tracing is disabled (the
// default). Buffers are registered globally through shared_ptr so span data
// survives worker-pool threads that exit before export.
//
// Two detail levels keep the ring useful on real runs: Coarse spans mark
// phase boundaries (one transient solve, one seed bisection, one contour
// direction), Fine spans mark hot kernels (one LU factorization, one Newton
// solve) that would otherwise flood the ring with hundreds of thousands of
// records per characterization.
//
// Export (cold path, after worker joins): Chrome `trace_event` JSON for
// chrome://tracing / Perfetto, and collapsed-stack text for flamegraph
// tools. See docs/OBSERVABILITY.md for the span taxonomy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace shtrace::obs {

/// Global instrumentation level. Off is the default and must stay near-free:
/// every instrumentation site guards on one relaxed atomic load.
enum class Detail : int {
    Off = 0,     ///< no spans, no metric observations
    Coarse = 1,  ///< phase-level spans + metric observations
    Fine = 2,    ///< adds per-kernel spans (LU, Newton solve, step loop)
};

int detailLevel() noexcept;
void setDetail(Detail level) noexcept;
/// Convenience: toggles between Off and Coarse (leaves Fine alone when
/// already enabled at Fine).
void setEnabled(bool on) noexcept;

inline bool enabled() noexcept {
    return detailLevel() >= static_cast<int>(Detail::Coarse);
}
inline bool fineEnabled() noexcept {
    return detailLevel() >= static_cast<int>(Detail::Fine);
}

/// Monotonic nanoseconds since an arbitrary process-local anchor. All span
/// timestamps share this clock.
long long monotonicNanos() noexcept;

/// One completed span, copied out of the thread-local rings by
/// collectSpans(). threadIndex is a stable small integer per recording
/// thread (registration order), not an OS thread id. traceHi/traceLo carry
/// the recording thread's ambient request identity (trace_context.hpp) at
/// completion time -- zero outside a request.
struct CollectedSpan {
    std::string name;
    long long startNs = 0;
    long long durationNs = 0;
    unsigned depth = 0;
    unsigned threadIndex = 0;
    std::uint64_t traceHi = 0;
    std::uint64_t traceLo = 0;
};

struct SpanCounts {
    std::size_t recorded = 0;  ///< spans pushed into rings since last clear
    std::size_t dropped = 0;   ///< pushes that overwrote an older record
};

/// Snapshot of every thread's ring, ordered by (threadIndex, start time).
/// Call after worker threads have joined; live writers race with this.
std::vector<CollectedSpan> collectSpans();
SpanCounts spanCounts();

/// Resets every registered ring. Quiesced-only, like collectSpans().
void clearSpans() noexcept;

/// Chrome trace_event JSON ({"traceEvents":[{"ph":"X",...},...]}). Spans
/// recorded under a request context carry `args.trace` for filtering.
std::string chromeTraceJson();
/// Chrome trace restricted to spans stamped with one trace id -- the serve
/// slow-request sampler's per-request export.
std::string chromeTraceJsonForTrace(std::uint64_t traceHi,
                                    std::uint64_t traceLo);
/// Collapsed-stack lines ("root;child;leaf <exclusive_ns>") for flamegraph
/// tools; stacks are rebuilt per thread from span nesting.
std::string collapsedStacks();
void writeChromeTrace(const std::string& path);
void writeChromeTraceForTrace(const std::string& path, std::uint64_t traceHi,
                              std::uint64_t traceLo);
void writeCollapsedStacks(const std::string& path);

// ---------------------------------------------------------------------------
// ScopedSpan: the instrumentation primitive.
//
// BasicScopedSpan is parameterized on a sink so the disabled configuration is
// compile-time checkable: BasicScopedSpan<NullSpanSink> is an empty type (the
// static_assert below is the proof), which is what the SHTRACE_SPAN macros
// expand to under -DSHTRACE_OBS_COMPILED_OUT. The default RuntimeSpanSink
// variant checks the runtime flag instead, so one binary serves both modes.
// ---------------------------------------------------------------------------

template <typename Sink>
class BasicScopedSpan;

/// Discards everything; instantiating BasicScopedSpan with it compiles to
/// nothing.
struct NullSpanSink {};

template <>
class BasicScopedSpan<NullSpanSink> {
public:
    explicit BasicScopedSpan(const char*) noexcept {}
};
static_assert(std::is_empty_v<BasicScopedSpan<NullSpanSink>>,
              "the null-sink span must compile to nothing");

namespace detail {
/// Increments the thread's nesting depth and returns the start timestamp.
long long spanBegin() noexcept;
/// Pushes the completed record and decrements the nesting depth.
void spanEnd(const char* name, long long startNs) noexcept;
}  // namespace detail

/// Records into the thread-local ring when the runtime flag is on. `name`
/// must be a string literal (the ring stores the pointer, not a copy).
struct RuntimeSpanSink {};

template <>
class BasicScopedSpan<RuntimeSpanSink> {
public:
    explicit BasicScopedSpan(const char* name) noexcept
        : name_(enabled() ? name : nullptr) {
        if (name_ != nullptr) {
            startNs_ = detail::spanBegin();
        }
    }
    ~BasicScopedSpan() {
        if (name_ != nullptr) {
            detail::spanEnd(name_, startNs_);
        }
    }
    BasicScopedSpan(const BasicScopedSpan&) = delete;
    BasicScopedSpan& operator=(const BasicScopedSpan&) = delete;

private:
    const char* name_;
    long long startNs_ = 0;
};

using ScopedSpan = BasicScopedSpan<RuntimeSpanSink>;

/// Like ScopedSpan but only records at Detail::Fine -- for kernels that run
/// hundreds of thousands of times per characterization.
class FineScopedSpan {
public:
    explicit FineScopedSpan(const char* name) noexcept
        : name_(fineEnabled() ? name : nullptr) {
        if (name_ != nullptr) {
            startNs_ = detail::spanBegin();
        }
    }
    ~FineScopedSpan() {
        if (name_ != nullptr) {
            detail::spanEnd(name_, startNs_);
        }
    }
    FineScopedSpan(const FineScopedSpan&) = delete;
    FineScopedSpan& operator=(const FineScopedSpan&) = delete;

private:
    const char* name_;
    long long startNs_ = 0;
};

}  // namespace shtrace::obs

#define SHTRACE_OBS_CONCAT2(a, b) a##b
#define SHTRACE_OBS_CONCAT(a, b) SHTRACE_OBS_CONCAT2(a, b)

#if defined(SHTRACE_OBS_COMPILED_OUT)
#define SHTRACE_SPAN(name)                                              \
    ::shtrace::obs::BasicScopedSpan<::shtrace::obs::NullSpanSink>       \
        SHTRACE_OBS_CONCAT(shtraceObsSpan_, __LINE__)(name)
#define SHTRACE_FINE_SPAN(name)                                         \
    ::shtrace::obs::BasicScopedSpan<::shtrace::obs::NullSpanSink>       \
        SHTRACE_OBS_CONCAT(shtraceObsSpan_, __LINE__)(name)
#else
#define SHTRACE_SPAN(name)                                              \
    ::shtrace::obs::ScopedSpan SHTRACE_OBS_CONCAT(shtraceObsSpan_,      \
                                                  __LINE__)(name)
#define SHTRACE_FINE_SPAN(name)                                         \
    ::shtrace::obs::FineScopedSpan SHTRACE_OBS_CONCAT(shtraceObsSpan_,  \
                                                      __LINE__)(name)
#endif
