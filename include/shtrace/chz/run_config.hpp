// shtrace -- the one options bundle every batch driver shares.
//
// Historically each batch entry point grew its own bundle
// (LibraryFlowOptions, PvtSweepOptions, CharacterizeOptions, ...) holding
// the same criterion/recipe/independent/seed/tracer fields in different
// subsets. RunConfig unifies them: one struct, one fluent builder, plus
// the ParallelOptions knob that all drivers now honour. The legacy names
// survive as thin aliases (see library.hpp / pvt.hpp / characterize.hpp)
// so existing call sites compile unchanged; new code should spell
// RunConfig.
//
// RunContext is the per-run execution state a driver derives from its
// config: the resolved worker count and the per-job SimStats arena whose
// deterministic (job-order) merge makes batch cost totals independent of
// the thread count.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "shtrace/chz/independent.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/obs/trace_context.hpp"
#include "shtrace/store/policy.hpp"
#include "shtrace/util/parallel.hpp"

namespace shtrace {

/// Knobs for the cross-corner surrogate driver (chz/corner_family.hpp).
/// Defaults give the SetupKit-style economy: trace the cube vertices +
/// center, surrogate-fill the rest, escalate corners whose acquisition
/// score exceeds 2 ps.
struct CornerSweepOptions {
    /// Trace every corner fully; the surrogate never fills anything.
    /// Equivalent to tolerance = 0, spelled explicitly for audits.
    bool anchorsAll = false;
    /// Explicit anchor corner indices (grid order); empty = cube
    /// vertices + center (PvtAxes::anchorIndices).
    std::vector<std::size_t> anchorIndices;
    /// Acceptance tolerance (seconds) on the per-corner acquisition
    /// score: max(propagated leave-one-out error, h-residual probe
    /// distance). Corners above it escalate to a full trace; 0 traces
    /// everything.
    double tolerance = 2e-12;
    /// Cap on corners traced beyond the anchors (-1 = unlimited). When
    /// the cap bites, remaining above-tolerance corners are still
    /// surrogate-filled but the result reports converged = false.
    int maxEscalations = -1;
    /// Arc-length control points each traced contour is resampled to
    /// before fitting (and the point count of predicted contours).
    int controlPoints = 16;
    /// Active-learning refit rounds before giving up (safety valve
    /// against an acquisition score that will not settle).
    int maxRounds = 6;
    /// Evaluate h once at the predicted contour midpoint of every
    /// candidate corner (a few transients each) and fold the residual
    /// distance |h|/||grad h|| into the score. Off trusts LOO alone.
    bool probeResidual = true;
};

struct RunConfig {
    CriterionOptions criterion;      ///< per-cell criteria override this
    SimulationRecipe recipe;
    IndependentOptions independent;  ///< scalar-Newton setup/hold search
    SeedOptions seed;                ///< contour seed search (Fig. 7)
    TracerOptions tracer;            ///< Euler-Newton contour tracing
    ParallelOptions parallel;        ///< worker pool (threads=1: serial)
    CornerSweepOptions corners;      ///< cross-corner surrogate driver
    bool traceContours = true;       ///< false: independent numbers only
    ProgressCallback onJobDone;      ///< optional batch observability hook
    std::string cacheDir;            ///< persistent store dir; empty: off
    CachePolicy cachePolicy = CachePolicy::ReadWrite;
    bool warmStart = true;           ///< seed traces from near-hit contours
    std::string metricsPath;         ///< metrics JSON path; empty: obs off
    std::string spanTracePath;       ///< Chrome trace path; empty: obs off
    /// Display-only provenance stamped on store entries this run saves
    /// (`shtrace-store list`/`stats` group by it). NOT part of the cache
    /// key: two runs of the same physics share an entry whatever they
    /// were called.
    std::string storeLabel;
    /// Request identity threaded from the serve layer (or any caller):
    /// drivers install it as the ambient obs::RequestContext so span
    /// records and log lines carry the originating request. Invalid
    /// (all-zero, the default) leaves the ambient context untouched. NOT
    /// part of the cache key.
    obs::TraceContext traceContext;

    static RunConfig defaults() { return RunConfig{}; }

    RunConfig& withCriterion(const CriterionOptions& value) {
        criterion = value;
        return *this;
    }
    RunConfig& withRecipe(const SimulationRecipe& value) {
        recipe = value;
        return *this;
    }
    /// Chord-Newton LU reuse in every transient (on by default; see
    /// TransientOptions::jacobianReuse). Off reproduces the legacy
    /// assemble-and-factor-every-iteration behavior.
    RunConfig& withJacobianReuse(bool enabled) {
        recipe.jacobianReuse = enabled;
        return *this;
    }
    /// Linear-algebra backend for every transient/DC solve: Dense, Sparse,
    /// or Auto (pick by circuit size; docs/LINALG.md). Part of the store
    /// cache key.
    RunConfig& withLinalgBackend(LinalgBackend backend) {
        recipe.linalg = backend;
        return *this;
    }
    /// SoA-batched MOSFET evaluation in every assembly pass (results are
    /// bit-identical to the scalar path).
    RunConfig& withBatchDeviceEval(bool enabled) {
        recipe.batchDeviceEval = enabled;
        return *this;
    }
    RunConfig& withIndependent(const IndependentOptions& value) {
        independent = value;
        return *this;
    }
    RunConfig& withSeedSearch(const SeedOptions& value) {
        seed = value;
        return *this;
    }
    RunConfig& withTracer(const TracerOptions& value) {
        tracer = value;
        return *this;
    }
    /// Transient-failure recovery: up to `limit` perturbed-predictor
    /// retries (lateral nudge of `jitter` x alpha) before alpha halving.
    /// limit=0 restores the legacy halve-immediately behavior.
    RunConfig& withTransientRetry(int limit, double jitter) {
        tracer.transientRetryLimit = limit;
        tracer.transientRetryJitter = jitter;
        return *this;
    }
    /// Plateau recovery: up to `limit` re-corrections with the prediction
    /// pulled back by `pull` per attempt, leaving alpha untouched.
    /// limit=0 restores the legacy halve-immediately behavior.
    RunConfig& withPlateauReseed(int limit, double pull) {
        tracer.plateauReseedLimit = limit;
        tracer.plateauReseedPull = pull;
        return *this;
    }
    RunConfig& withParallel(const ParallelOptions& value) {
        parallel = value;
        return *this;
    }
    RunConfig& withThreads(int threads) {
        parallel.threads = threads;
        return *this;
    }
    RunConfig& withChunk(int chunk) {
        parallel.chunk = chunk;
        return *this;
    }
    RunConfig& withCornerSweep(const CornerSweepOptions& value) {
        corners = value;
        return *this;
    }
    /// Trace every corner of the cube fully (disables the surrogate).
    RunConfig& withCornerAnchorsAll(bool enabled) {
        corners.anchorsAll = enabled;
        return *this;
    }
    /// Acceptance tolerance (seconds) for surrogate-filled corners;
    /// 0 = exhaustive.
    RunConfig& withCornerTolerance(double seconds) {
        corners.tolerance = seconds;
        return *this;
    }
    /// Max full traces beyond the anchors (-1 = unlimited).
    RunConfig& withCornerBudget(int maxEscalations) {
        corners.maxEscalations = maxEscalations;
        return *this;
    }
    RunConfig& withContours(bool enabled) {
        traceContours = enabled;
        return *this;
    }
    RunConfig& withProgress(ProgressCallback callback) {
        onJobDone = std::move(callback);
        return *this;
    }
    /// Enables the persistent result store rooted at `dir` (store/STORE.md).
    RunConfig& withCacheDir(std::string dir) {
        cacheDir = std::move(dir);
        return *this;
    }
    RunConfig& withCachePolicy(CachePolicy policy) {
        cachePolicy = policy;
        return *this;
    }
    RunConfig& withWarmStart(bool enabled) {
        warmStart = enabled;
        return *this;
    }
    /// Labels the store entries this run saves (display-only; see
    /// storeLabel).
    RunConfig& withStoreLabel(std::string label) {
        storeLabel = std::move(label);
        return *this;
    }
    /// Writes a metrics snapshot (JSON at `path`, Prometheus text next to
    /// it) when the run finishes. Enables the obs layer for the run.
    RunConfig& withMetrics(std::string path) {
        metricsPath = std::move(path);
        return *this;
    }
    /// Writes a Chrome trace_event JSON (and a collapsed-stack twin at
    /// `path` + ".folded") when the run finishes. Enables the obs layer.
    RunConfig& withSpanTrace(std::string path) {
        spanTracePath = std::move(path);
        return *this;
    }
    /// Stamps this run's spans and log lines with a request identity.
    RunConfig& withTraceContext(const obs::TraceContext& context) {
        traceContext = context;
        return *this;
    }
};

/// The ambient request context a driver should run under: the config's
/// trace identity when one was supplied, otherwise whatever the calling
/// thread already carries (so nested drivers inherit). The caller's stage
/// accumulator is preserved either way.
inline obs::RequestContext requestContextFor(const RunConfig& config) {
    obs::RequestContext context = obs::currentRequestContext();
    if (config.traceContext.valid()) {
        context.trace = config.traceContext;
    }
    return context;
}

/// Per-run state shared by the batch drivers: the resolved worker count
/// and one SimStats slot per job. Jobs accumulate into their own slot (no
/// sharing), and mergedStats() folds the slots in job order, so counter
/// totals are byte-identical for any thread count.
class RunContext {
public:
    RunContext(const RunConfig& config, std::size_t jobCount)
        : config_(config),
          threads_(resolveThreadCount(config.parallel.threads, jobCount)),
          jobStats_(jobCount) {}

    const RunConfig& config() const { return config_; }
    int threads() const { return threads_; }
    std::size_t jobCount() const { return jobStats_.size(); }
    SimStats& jobStats(std::size_t job) { return jobStats_[job]; }

    SimStats mergedStats() const {
        SimStats total;
        for (const SimStats& s : jobStats_) {
            total.merge(s);
        }
        return total;
    }

private:
    const RunConfig& config_;
    int threads_;
    std::vector<SimStats> jobStats_;
};

}  // namespace shtrace
