// shtrace -- the underdetermined scalar equation h(tau_s, tau_h).
//
// Paper eq. 4:  h(tau) = c^T phi(t_f; x0, 0, tau_s, tau_h) - r = 0.
// Evaluating h means one transient simulation of the register from the
// fixed initial condition x0 to t_f; the gradient [dh/dtau_s, dh/dtau_h]
// falls out of the co-integrated sensitivities (eqs. 11-14) at the cost of
// two extra back-substitutions per time step.
//
// HFunction pins the simulation recipe: FIXED uniform time grid (paper
// algorithm step 2.a.i) so that the discretized h is a smooth function of
// tau and the analytic gradient is its exact derivative.
#pragma once

#include <memory>

#include "shtrace/analysis/transient.hpp"
#include "shtrace/measure/surface.hpp"
#include "shtrace/waveform/data_pulse.hpp"

namespace shtrace {

/// One evaluation of h and (optionally) its gradient.
struct HEvaluation {
    bool success = false;
    double h = 0.0;      ///< c^T x(t_f) - r
    double dhds = 0.0;   ///< dh/dtau_s
    double dhdh = 0.0;   ///< dh/dtau_h
    /// True when the failure was a NaN/Inf caught at a guard (in the
    /// transient engine or on h/dhds/dhdh themselves) rather than an
    /// ordinary non-convergence; the offending values stay in h/dhds/dhdh
    /// for diagnostics. success is always false when this is set.
    bool nonFinite = false;
};

class HFunction {
public:
    /// `selector` is the output projection c; `tf` and `r` come from the
    /// criterion computation (see CharacterizationProblem). `baseOptions`
    /// must describe the fixed-grid transient recipe; its tStop is
    /// overridden with tf, and its initialCondition should carry the shared
    /// x0 (computed once -- the paper's fixed initial state).
    HFunction(const Circuit& circuit, std::shared_ptr<DataPulse> data,
              Vector selector, double tf, double r,
              TransientOptions baseOptions);
    /// Decorators (tests/fault_injection.hpp) copy the wrapped function's
    /// whole recipe; spelled out because the virtual destructor would
    /// otherwise deprecate the implicit copy.
    HFunction(const HFunction&) = default;
    virtual ~HFunction() = default;

    // The evaluation entry points are virtual so a test harness can wrap an
    // HFunction in a fault-injecting decorator (tests/fault_injection.hpp)
    // without touching the production call sites. Production code has
    // exactly one concrete type; the virtual dispatch cost is noise next to
    // the transient each call runs.

    /// h and gradient at (tau_s, tau_h); one sensitivity-tracked transient.
    /// Guarantees: success implies h/dhds/dhdh are all finite.
    virtual HEvaluation evaluate(double setupSkew, double holdSkew,
                                 SimStats* stats = nullptr) const;

    /// h only (no sensitivities); one plain transient. Used by the
    /// brute-force surface baseline and by bisection seeding.
    virtual HEvaluation evaluateValueOnly(double setupSkew, double holdSkew,
                                          SimStats* stats = nullptr) const;

    /// Full transient with stored states at (tau_s, tau_h) -- for waveform
    /// inspection and clock-to-Q measurement.
    virtual TransientResult simulate(double setupSkew, double holdSkew,
                                     SimStats* stats = nullptr) const;

    double tf() const { return tf_; }
    double r() const { return r_; }
    const Vector& selector() const { return selector_; }
    DataPulse& data() const { return *data_; }

private:
    TransientOptions makeOptions(bool sensitivities, bool storeStates) const;

    const Circuit& circuit_;
    std::shared_ptr<DataPulse> data_;
    Vector selector_;
    double tf_;
    double r_;
    TransientOptions baseOptions_;
};

}  // namespace shtrace
