// shtrace -- PVT corner sweep harness.
//
// The paper's motivation: "setup/hold times need to be characterized for
// every register of every standard cell library ... for all PVT corners".
// This harness runs independent setup/hold characterization (the cheap
// per-corner quantities) plus the characteristic clock-to-Q across a list
// of corners for any register builder.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/run_config.hpp"

namespace shtrace {

/// Builds a fixture for a given corner (e.g. wraps buildTspcRegister).
using CornerFixtureBuilder =
    std::function<RegisterFixture(const ProcessCorner&)>;

struct PvtCornerResult {
    std::string corner;
    bool success = false;
    std::string failureReason;
    double characteristicClockToQ = 0.0;
    double setupTime = 0.0;  ///< independent, hold pinned large
    double holdTime = 0.0;   ///< independent, setup pinned large
    int transientCount = 0;  ///< = stats.transientSolves of the two searches
    /// Full cost of this corner (criterion + both searches), so corner
    /// sweeps are cost-comparable with library rows.
    SimStats stats;
};

/// DEPRECATED alias: the sweep now takes the unified RunConfig.
using PvtSweepOptions = RunConfig;

/// Corner rows in input order plus the merged sweep cost.
using PvtSweepResult = BatchResult<PvtCornerResult>;

/// Characterizes every corner; failures are reported per row, never
/// thrown. Corners run in parallel on config.parallel.threads workers.
PvtSweepResult sweepPvtCorners(const std::vector<ProcessCorner>& corners,
                               const CornerFixtureBuilder& builder,
                               const RunConfig& config = {});

/// DEPRECATED overload (one release): stats out-param instead of the
/// result-embedded SimStats. Forwards to the RunConfig entry point.
std::vector<PvtCornerResult> sweepPvtCorners(
    const std::vector<ProcessCorner>& corners,
    const CornerFixtureBuilder& builder, const RunConfig& config,
    SimStats* stats);

}  // namespace shtrace
