// shtrace -- PVT corner sweep harness.
//
// The paper's motivation: "setup/hold times need to be characterized for
// every register of every standard cell library ... for all PVT corners".
// This harness runs independent setup/hold characterization (the cheap
// per-corner quantities) plus the characteristic clock-to-Q across a list
// of corners for any register builder.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/independent.hpp"
#include "shtrace/chz/problem.hpp"

namespace shtrace {

/// Builds a fixture for a given corner (e.g. wraps buildTspcRegister).
using CornerFixtureBuilder =
    std::function<RegisterFixture(const ProcessCorner&)>;

struct PvtCornerResult {
    std::string corner;
    bool success = false;
    double characteristicClockToQ = 0.0;
    double setupTime = 0.0;  ///< independent, hold pinned large
    double holdTime = 0.0;   ///< independent, setup pinned large
    int transientCount = 0;
};

struct PvtSweepOptions {
    CriterionOptions criterion;
    SimulationRecipe recipe;
    IndependentOptions independent;
};

std::vector<PvtCornerResult> sweepPvtCorners(
    const std::vector<ProcessCorner>& corners,
    const CornerFixtureBuilder& builder, const PvtSweepOptions& options = {},
    SimStats* stats = nullptr);

}  // namespace shtrace
