// shtrace -- Euler-Newton curve tracing of the constant clock-to-Q contour.
//
// Paper Section IIID/IIIE: from a point on the curve, the unit tangent
// T = [-dh/dtau_h, dh/dtau_s]/||.|| (eq. 16) is read off the MPNR Jacobian
// for free. Predict tau + alpha*T, correct with MPNR (2-3 iterations
// typical, since the predictor is an excellent guess), repeat. Tracing runs
// in both directions from the seed and the two half-curves are spliced.
//
// Step-length control beyond the paper's fixed alpha: the step shrinks when
// the corrector struggles (or lands too far from the prediction) and grows
// geometrically on easy corrections -- standard continuation practice
// [Allgower-Georg], which the paper cites for the method.
#pragma once

#include <vector>

#include "shtrace/chz/mpnr.hpp"
#include "shtrace/chz/trace_diagnostics.hpp"

namespace shtrace {

/// Rectangle of skews within which tracing proceeds.
struct SkewBounds {
    double setupMin = 0.0;
    double setupMax = 1e-9;
    double holdMin = 0.0;
    double holdMax = 1e-9;

    bool contains(const SkewPoint& p) const {
        return p.setup >= setupMin && p.setup <= setupMax &&
               p.hold >= holdMin && p.hold <= holdMax;
    }
};

/// Which corrector refines each Euler prediction back onto the curve.
enum class CorrectorKind {
    MoorePenrose,     ///< the paper's MPNR (minimum-norm update)
    PseudoArclength,  ///< augmented square system (Allgower-Georg)
};

struct TracerOptions {
    MpnrOptions corrector;
    CorrectorKind correctorKind = CorrectorKind::MoorePenrose;
    SkewBounds bounds;

    double stepLength = 10e-12;      ///< initial alpha (s)
    double minStepLength = 0.25e-12;
    double maxStepLength = 50e-12;
    double growFactor = 1.4;         ///< applied after easy corrections
    int easyIterations = 3;          ///< "easy" = converged within this many
    /// Reject a correction landing farther than this multiple of alpha from
    /// the predicted point (the corrector wandered to a distant curve part).
    double maxCorrectionRatio = 2.0;

    int maxPoints = 40;  ///< total contour points to produce (paper: 40)
    bool traceBothDirections = true;

    // --- differentiated recovery (docs/ALGORITHM.md section 14) ---
    // A failed transient is usually a spatial accident (the predictor
    // overshot into a region where the fixed-grid Newton recipe breaks
    // down), so before surrendering step length the tracer re-aims the SAME
    // alpha at a laterally perturbed target. A vanished gradient means the
    // predictor left the curve's basin for the plateau, so the recovery
    // pulls the prediction back TOWARD the last on-curve point without
    // shrinking alpha for future steps. Only when a policy's budget is
    // spent does the tracer fall back to the classic halving.
    /// Perturbed-predictor retries per step on a failed transient (0
    /// reproduces the legacy halve-immediately behavior).
    int transientRetryLimit = 2;
    /// Lateral perturbation, as a fraction of alpha, applied perpendicular
    /// to the tangent (alternating sides across retries).
    double transientRetryJitter = 0.35;
    /// Pulled-back re-corrections per step on a vanished gradient (0
    /// reproduces the legacy halve-immediately behavior).
    int plateauReseedLimit = 2;
    /// Fraction of the prediction distance kept per plateau re-seed.
    double plateauReseedPull = 0.5;
};

struct TracedContour {
    bool seedConverged = false;
    /// Points ordered along the curve (increasing setup skew by convention).
    std::vector<SkewPoint> points;
    /// |h| at each point (the "exact to prescribed accuracy" property).
    std::vector<double> residuals;
    /// Corrector iteration count per point.
    std::vector<int> correctorIterations;
    /// Rejected predictor attempts (halvings, perturbed retries, re-seeds).
    int predictorRetries = 0;
    /// The flight recorder: every retry/recovery/termination, classified.
    /// A healthy trace still logs its terminations (LeftBounds per
    /// direction, or BudgetExhausted); anything else signals a struggle.
    TraceDiagnostics diagnostics;

    double averageCorrectorIterations() const;
};

/// Traces the contour through `seed` (corrected onto the curve first).
TracedContour traceContour(const HFunction& h, SkewPoint seed,
                           const TracerOptions& options = {},
                           SimStats* stats = nullptr);

}  // namespace shtrace
