// shtrace -- families of constant clock-to-Q contours.
//
// SHIA-STA flows want more than the single 10% contour: a family at
// several degradation levels quantifies how much extra clock-to-Q a path
// must absorb for a given setup/hold relaxation (the paper fixes 10% "for
// example"; the machinery is degradation-agnostic). Members are traced in
// order and each seed search warm-starts from the previous member's setup
// asymptote, since the contours are nested: a larger allowed degradation
// tolerates later data, moving the contour toward smaller skews.
#pragma once

#include <vector>

#include "shtrace/chz/characterize.hpp"

namespace shtrace {

struct ContourFamilyOptions {
    /// Degradation levels, ascending (e.g. {0.05, 0.10, 0.20}).
    std::vector<double> degradations = {0.05, 0.10, 0.20};
    CriterionOptions criterion;  ///< .degradation is overridden per member
    SimulationRecipe recipe;
    SeedOptions seed;
    TracerOptions tracer;
};

struct ContourFamilyMember {
    double degradation = 0.0;
    double tf = 0.0;
    bool success = false;
    SeedResult seed;
    TracedContour contour;
    /// This member's own cost (criterion + seed + trace); stats.wallSeconds
    /// is the per-member wall clock, so benches can attribute cost per
    /// contour without re-deriving it from the merged total.
    SimStats stats;
};

struct ContourFamilyResult {
    double characteristicClockToQ = 0.0;
    std::vector<ContourFamilyMember> members;
    SimStats stats;  ///< merged member costs, in member order

    bool allSucceeded() const;
};

ContourFamilyResult characterizeContourFamily(
    const RegisterFixture& fixture, const ContourFamilyOptions& options = {});

}  // namespace shtrace
