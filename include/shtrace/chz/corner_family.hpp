// shtrace -- cross-corner contour families with active learning.
//
// `sweepPvtCorners` pays a full characterization at every corner of the
// PVT cube; production libraries want the cube collapsed. This driver
// traces full Euler-Newton contours only at a few ANCHOR corners (cube
// vertices + center by default), fits the cross-corner surrogate
// (corner_surrogate.hpp), then runs an active-learning loop: every
// untraced corner is scored by the surrogate's propagated leave-one-out
// error plus a cheap single-point h-residual probe, corners above
// tolerance escalate to a full trace (warm-started from the nearest
// traced corner in normalized PVT space), and the surrogate refits
// until the score is below tolerance everywhere. Surrogate-accepted
// corners are published to the store and Liberty-lite export with
// provenance "surrogate", so downstream consumers can always tell a
// predicted contour from a traced one.
//
// With config.traceContours = false there is no contour to interpolate;
// the driver delegates to sweepPvtCorners over the full grid, so
// exhaustive mode reproduces today's results bit-identically.
#pragma once

#include <string>
#include <vector>

#include "shtrace/chz/corner_surrogate.hpp"
#include "shtrace/chz/library.hpp"
#include "shtrace/chz/pvt.hpp"
#include "shtrace/chz/run_config.hpp"

namespace shtrace {

/// How a corner's numbers were obtained.
enum class CornerProvenance {
    Traced,     ///< full Euler-Newton trace at this corner
    Surrogate,  ///< predicted by the cross-corner interpolant
};

// Inline so the store serializers (which sit below chz in the link graph)
// can spell provenance without a chz dependency.
inline const char* toString(CornerProvenance provenance) {
    return provenance == CornerProvenance::Surrogate ? "surrogate" : "traced";
}
inline CornerProvenance cornerProvenanceFromString(const std::string& text,
                                                   bool& ok) {
    ok = true;
    if (text == "traced") {
        return CornerProvenance::Traced;
    }
    if (text == "surrogate") {
        return CornerProvenance::Surrogate;
    }
    ok = false;
    return CornerProvenance::Traced;
}

/// One corner of the family, in grid (PvtAxes) order.
struct CornerFamilyRow {
    std::string corner;   ///< display name (cornerAtPvt spelling)
    PvtPoint point;
    bool success = false;
    std::string failureReason;
    bool anchor = false;  ///< traced in the initial anchor round
    CornerProvenance provenance = CornerProvenance::Traced;
    double characteristicClockToQ = 0.0;
    double setupTime = 0.0;  ///< contour setup asymptote (max-hold point)
    double holdTime = 0.0;   ///< contour hold asymptote (max-setup point)
    /// Traced contour points, or the predicted control points for
    /// surrogate rows.
    std::vector<SkewPoint> contour;
    /// The acquisition score this corner was accepted/escalated at
    /// (0 for anchors).
    double acquisitionScore = 0.0;
    /// Grid index of the warm-start donor for escalated traces; -1 for
    /// anchors and surrogate rows.
    int warmStartCorner = -1;
    int transientCount = 0;  ///< stats.transientSolves, CSV-friendly
    /// Full per-corner cost (fixture build, probe or trace, store I/O);
    /// stats.wallSeconds is the per-member wall clock.
    SimStats stats;
};

struct CornerFamilyResult {
    PvtAxes axes;
    std::vector<CornerFamilyRow> rows;  ///< grid order, one per corner
    std::size_t anchorsTraced = 0;
    std::size_t escalated = 0;
    std::size_t surrogateAccepted = 0;
    /// Max acquisition score among surrogate-accepted corners (the
    /// certified error bound of the collapse).
    double surrogateMaxScore = 0.0;
    int rounds = 0;          ///< active-learning refit rounds run
    /// False when maxRounds or maxEscalations left corners above
    /// tolerance (their rows are surrogate-filled regardless).
    bool converged = true;
    SimStats stats;          ///< merged in grid order (thread-stable)

    std::size_t tracedCount() const { return anchorsTraced + escalated; }
    bool allSucceeded() const;
};

/// Characterizes every corner of the grid, tracing as few as the
/// tolerance allows. Failures are reported per row, never thrown;
/// traces run in parallel on config.parallel.threads workers.
CornerFamilyResult characterizeCornerFamily(const PvtAxes& axes,
                                            const CornerFixtureBuilder& builder,
                                            const RunConfig& config = {});

/// Converts the family into Liberty-lite rows (cell name = corner name,
/// provenance carried through) for writeLibertyLite.
std::vector<LibraryRow> libraryRowsFromCornerFamily(
    const CornerFamilyResult& result);

}  // namespace shtrace
