// shtrace -- one-call interdependent characterization pipeline.
//
// Ties the whole Section IIIE algorithm together: criterion -> seed search
// (Fig. 7) -> Euler-Newton contour tracing. This is the API an end user
// (standard-cell characterization flow) calls per register/corner.
#pragma once

#include <string>

#include "shtrace/chz/run_config.hpp"

namespace shtrace {

/// DEPRECATED alias: the single-register pipeline now takes the unified
/// RunConfig (run_config.hpp); its parallel knob is unused here -- this is
/// the one-job entry point the batch drivers fan out over.
using CharacterizeOptions = RunConfig;

struct CharacterizeResult {
    bool success = false;
    /// Empty on success; otherwise why the pipeline stopped, including the
    /// tracer's diagnostics summary ("no empty contour with no reason").
    std::string failureReason;
    double characteristicClockToQ = 0.0;
    double degradedClockToQ = 0.0;
    double tf = 0.0;
    double r = 0.0;
    SeedResult seed;
    TracedContour contour;
    SimStats stats;  ///< complete cost of the run
};

/// Full interdependent setup/hold characterization of a register. The seed
/// search runs at a large pinned hold skew; the seed's hold coordinate is
/// then clamped into the tracer's bounds before tracing so the produced
/// points lie in the requested window.
CharacterizeResult characterizeInterdependent(
    const RegisterFixture& fixture, const CharacterizeOptions& options = {});

}  // namespace shtrace
