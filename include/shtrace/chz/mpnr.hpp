// shtrace -- Moore-Penrose pseudo-inverse Newton-Raphson (MPNR).
//
// Solves the underdetermined scalar equation h(tau_s, tau_h) = 0 (paper
// Section IIIC): from an initial guess A, iterate
//     tau <- tau - H^+ h,   H^+ = H^T (H H^T)^{-1}   (eqs. 23-24)
// which converges to a point B on the solution curve; for small residuals B
// is the curve point nearest A, which is exactly what the Euler predictor
// wants from its corrector.
#pragma once

#include "shtrace/chz/h_function.hpp"
#include "shtrace/measure/surface.hpp"

namespace shtrace {

struct MpnrOptions {
    int maxIterations = 15;
    double skewRelTol = 1e-5;    ///< relative skew-update tolerance
    double skewAbsTol = 1e-16;   ///< absolute skew-update tolerance (s)
    double hTol = 2e-5;          ///< |h| tolerance (V)
    double maxStep = 100e-12;    ///< clamp on one update's 2-norm (s)
    /// Gradient norm (V/s) below which the iterate is declared to be on
    /// the flat plateau of h (both skews generous -> output insensitive).
    /// Useful gradients near the contour are ~1e9..1e10 V/s; plateau
    /// residues are orders of magnitude smaller.
    double gradientTol = 1e8;
};

struct MpnrResult {
    bool converged = false;
    /// Final iterate. On every NON-converged exit `h/dhds/dhdh` were
    /// evaluated exactly AT `point` (the solver rewinds its speculative
    /// last step rather than pairing a stale residual with a new point);
    /// on convergence they are from the final evaluation, one vanishing
    /// update away.
    SkewPoint point;
    double h = 0.0;        ///< residual at `point`
    double dhds = 0.0;     ///< gradient at `point` (feeds the Euler tangent)
    double dhdh = 0.0;
    int iterations = 0;
    bool gradientVanished = false;  ///< hit a critical point of h
    bool transientFailed = false;
    /// NaN/Inf met a guard: the evaluation reported non-finite values, or
    /// the Newton update itself went non-finite. The offending values stay
    /// in h/dhds/dhdh for diagnostics.
    bool nonFinite = false;
};

/// Runs MPNR from `guess`. Non-convergence is reported, not thrown -- the
/// tracer probes and shrinks its predictor step on failure.
MpnrResult solveMpnr(const HFunction& h, SkewPoint guess,
                     const MpnrOptions& options = {},
                     SimStats* stats = nullptr);

/// Pseudo-arclength corrector (Allgower-Georg, the alternative the
/// continuation literature pairs with Euler predictors): solve the SQUARE
/// augmented system
///     h(tau) = 0
///     T^T (tau - guess) = 0
/// by plain Newton, constraining the correction to the hyperplane through
/// the predicted point orthogonal to the tangent T. Unlike MPNR the step
/// direction is fully determined each iteration (no minimum-norm
/// projection), which keeps the corrector from sliding along the curve --
/// at the price of failing outright when the curve is tangent to the
/// constraint plane. Reported through the same MpnrResult.
MpnrResult solveArclengthCorrector(const HFunction& h, SkewPoint guess,
                                   const Vector& tangent,
                                   const MpnrOptions& options = {},
                                   SimStats* stats = nullptr);

}  // namespace shtrace
