// shtrace -- Monte Carlo statistical setup/hold characterization.
//
// The paper's cost analysis covers "all process-voltage-temperature
// corners OR statistical process samples". This harness draws process
// samples (normal perturbations on threshold, mobility and supply around a
// nominal corner), runs the fast sensitivity-driven independent
// characterization per sample, and reports distribution statistics --
// the inputs to statistical STA setup/hold models.
#pragma once

#include <cstdint>
#include <vector>

#include "shtrace/chz/pvt.hpp"

namespace shtrace {

struct ProcessVariation {
    double vtSigma = 0.02;    ///< absolute sigma on vtn/vtp (V)
    double kpRelSigma = 0.05; ///< relative sigma on kpn/kpp
    double vddRelSigma = 0.01;///< relative sigma on the supply
};

/// Extends the unified RunConfig with the Monte-Carlo-specific knobs.
/// NOTE: `seed` (the RNG seed) intentionally shadows RunConfig::seed (the
/// contour seed search, unused by this driver).
struct MonteCarloOptions : RunConfig {
    int samples = 20;
    std::uint64_t seed = 1;   ///< deterministic by default
    ProcessVariation variation;
};

/// Distribution summary of one characterized quantity.
struct SampleStatistics {
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

struct MonteCarloResult {
    int samplesRequested = 0;
    int samplesConverged = 0;
    std::vector<double> setupTimes;  ///< per converged sample, sample order
    std::vector<double> holdTimes;
    std::vector<double> clockToQs;
    SampleStatistics setup;
    SampleStatistics hold;
    SampleStatistics clockToQ;
    SimStats stats;  ///< merged cost of the whole study (job-order merge)
};

/// Draws a perturbed corner (exposed for tests).
ProcessCorner sampleCorner(const ProcessCorner& nominal,
                           const ProcessVariation& variation,
                           std::uint64_t seed, int sampleIndex);

/// Samples run in parallel on options.parallel.threads workers; each
/// sample has its own RNG stream (sampleCorner) and its own fixture, so
/// the distributions and counter totals are byte-identical for any thread
/// count. The SimStats out-param is DEPRECATED (one release): the merged
/// cost is now embedded in the result.
MonteCarloResult runMonteCarlo(const ProcessCorner& nominal,
                               const CornerFixtureBuilder& builder,
                               const MonteCarloOptions& options = {},
                               SimStats* stats = nullptr);

}  // namespace shtrace
