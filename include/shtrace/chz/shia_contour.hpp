// shtrace -- STA-facing view of an interdependent setup/hold contour.
//
// A traced contour is a point list; an STA engine needs queries:
//   * holdRequirementAt(setup): the minimal hold time compatible with a
//     given available setup margin (monotone interpolation along the
//     curve, clamped to the asymptotes);
//   * admits(setup, hold): does SOME point on the contour lie component-
//     wise below the available (setup, hold) budget? -- the SHIA-STA
//     pass/fail test;
//   * slack decomposition for reporting.
//
// The class normalizes the tracer output to its Pareto frontier once --
// this absorbs the vertical setup-asymptote segment (many holds at one
// setup) and corrector wiggle -- so downstream queries are O(log n).
#pragma once

#include <optional>

#include "shtrace/chz/tracer.hpp"

namespace shtrace {

class ShiaContour {
public:
    /// Takes tracer output and keeps its Pareto-minimal staircase. Throws
    /// InvalidArgumentError when fewer than 2 points are supplied or the
    /// frontier degenerates to a single point (no tradeoff present). The
    /// second parameter is accepted for API stability and unused.
    explicit ShiaContour(std::vector<SkewPoint> points,
                         double monotoneSlack = 0.0);

    /// Convenience: from a traced contour.
    static ShiaContour fromTrace(const TracedContour& contour,
                                 double monotoneSlack = 0.0);

    std::size_t size() const { return points_.size(); }
    const std::vector<SkewPoint>& points() const { return points_; }

    /// Smallest setup skew on the contour (the setup-time asymptote end).
    double minSetup() const { return points_.front().setup; }
    /// Smallest hold skew on the contour (the hold-time asymptote end).
    double minHold() const { return points_.back().hold; }

    /// The minimal hold requirement at a given setup margin: linear
    /// interpolation along the curve; nullopt when `setup` is below the
    /// contour's smallest setup (no valid pair exists there); clamped to
    /// minHold() beyond the largest traced setup.
    std::optional<double> holdRequirementAt(double setup) const;

    /// SHIA-STA admission test: the budget (setupAvail, holdAvail)
    /// dominates some valid pair on the contour.
    bool admits(double setupAvail, double holdAvail) const;

    /// Hold slack at the given budget: holdAvail - holdRequirementAt
    /// (negative = violation; nullopt when setup itself is infeasible).
    std::optional<double> holdSlack(double setupAvail,
                                    double holdAvail) const;

private:
    std::vector<SkewPoint> points_;  ///< sorted by increasing setup
};

}  // namespace shtrace
