// shtrace -- STA-facing view of an interdependent setup/hold contour.
//
// A traced contour is a point list; an STA engine needs queries:
//   * holdRequirementAt(setup): the minimal hold time compatible with a
//     given available setup margin (monotone interpolation along the
//     curve, clamped to the asymptotes);
//   * admits(setup, hold): does SOME point on the contour lie component-
//     wise below the available (setup, hold) budget? -- the SHIA-STA
//     pass/fail test;
//   * slack decomposition for reporting.
//
// The class normalizes the tracer output to its Pareto frontier once --
// this absorbs the vertical setup-asymptote segment (many holds at one
// setup) and corrector wiggle -- so downstream queries are O(log n).
#pragma once

#include <optional>

#include "shtrace/chz/tracer.hpp"

namespace shtrace {

class ShiaContour {
public:
    /// Takes tracer output and keeps its Pareto-minimal staircase. Throws
    /// InvalidArgumentError when fewer than 2 points are supplied, any
    /// point is non-finite, or the frontier degenerates to a single point
    /// (no tradeoff present).
    ///
    /// `monotoneSlack` (seconds, >= 0) is the corrector-wiggle tolerance:
    /// a point whose hold exceeds the running minimum by at most this much
    /// is RETAINED as genuine curve shape instead of being dropped as
    /// dominated, so a few ps of corrector wiggle survives normalization
    /// as documented. 0 (the default) keeps the strict frontier. Points
    /// sharing one setup (the vertical setup-asymptote segment) always
    /// collapse to their lowest hold regardless of the slack.
    explicit ShiaContour(std::vector<SkewPoint> points,
                         double monotoneSlack = 0.0);

    /// Convenience: from a traced contour.
    static ShiaContour fromTrace(const TracedContour& contour,
                                 double monotoneSlack = 0.0);

    std::size_t size() const { return points_.size(); }
    const std::vector<SkewPoint>& points() const { return points_; }

    /// Smallest setup skew on the contour (the setup-time asymptote end).
    double minSetup() const { return points_.front().setup; }
    /// Smallest hold skew on the contour (the hold-time asymptote end).
    /// With a nonzero monotoneSlack the minimum may sit at an interior
    /// point; this is the true minimum over the retained set.
    double minHold() const { return minHold_; }

    /// The conventional single-pair "knee" a classical library would
    /// publish: the Pareto-normalized point minimizing setup + hold (the
    /// balanced corner of the staircase); ties resolve to the smaller
    /// setup. Selecting it from the normalized points -- never from the
    /// raw trace -- keeps it off dominated points and off the vertical
    /// setup-asymptote segment.
    SkewPoint kneePoint() const;

    /// The minimal hold requirement at a given setup margin: linear
    /// interpolation along the curve; nullopt when `setup` is non-finite
    /// or below the contour's smallest setup (no valid pair exists
    /// there); clamped to minHold() beyond the largest traced setup.
    std::optional<double> holdRequirementAt(double setup) const;

    /// SHIA-STA admission test: the budget (setupAvail, holdAvail)
    /// dominates some valid pair on the contour. Non-finite budgets are
    /// rejected (never admitted).
    bool admits(double setupAvail, double holdAvail) const;

    /// Hold slack at the given budget: holdAvail - holdRequirementAt
    /// (negative = violation; nullopt when setup itself is infeasible or
    /// either budget is non-finite).
    std::optional<double> holdSlack(double setupAvail,
                                    double holdAvail) const;

private:
    std::vector<SkewPoint> points_;  ///< sorted by increasing setup
    double minHold_ = 0.0;           ///< minimum hold over points_
};

}  // namespace shtrace
