// shtrace -- independent setup/hold characterization (paper Section IIIB).
//
// With the other skew pinned very large, h reduces to a scalar equation in
// one scalar unknown:
//   * binary search on the pass/fail transition -- the prevailing industry
//     practice and the baseline of the paper's earlier DATE'07 work [6];
//   * 1-D Newton-Raphson on h using the analytic sensitivity, the [6]
//     method, reported there to be 4-10x faster than bisection.
#pragma once

#include "shtrace/chz/h_function.hpp"

namespace shtrace {

/// Which skew is being characterized (the other is pinned large).
enum class SkewAxis { Setup, Hold };

struct IndependentOptions {
    double pinnedSkew = 1.5e-9;   ///< the "very large" other skew
    double lo = 5e-12;            ///< initial bracket / search range
    double hi = 1.5e-9;
    double tolerance = 0.05e-12;  ///< bisection stopping width (s)
    int maxIterations = 60;

    // Newton-specific:
    double hTol = 2e-5;           ///< |h| tolerance (V)
    double newtonSeed = 0.0;      ///< 0 = coarse 4-way bracket scan first
};

struct IndependentResult {
    bool converged = false;
    double skew = 0.0;       ///< the characterized setup or hold time
    int iterations = 0;
    int transientCount = 0;  ///< transients this call consumed
};

/// Bisection on the pass/fail boundary. `passSign` as in seed.hpp.
IndependentResult characterizeByBisection(const HFunction& h, SkewAxis axis,
                                          double passSign,
                                          const IndependentOptions& options = {},
                                          SimStats* stats = nullptr);

/// Scalar Newton on h along one axis (ref [6]). A short coarse scan
/// brackets the root first when no seed is given; Newton then refines with
/// sensitivity-driven steps.
IndependentResult characterizeByNewton(const HFunction& h, SkewAxis axis,
                                       double passSign,
                                       const IndependentOptions& options = {},
                                       SimStats* stats = nullptr);

}  // namespace shtrace
