// shtrace -- standard-cell library characterization flow.
//
// The paper's economic argument: setup/hold must be characterized "for
// every register/cell of every standard cell library ... characterization
// typically takes weeks or months". This module is the batch driver a
// library team would run: a list of cells, one characterization recipe,
// per-cell independent setup/hold plus (optionally) the interdependent
// contour, and a Liberty-flavoured text report.
//
// The report is deliberately "Liberty-lite": readable .lib-style syntax
// carrying the characterized numbers (and the SHIA contour as a vendor
// extension group), NOT a spec-conformant Liberty file.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/run_config.hpp"

namespace shtrace {

/// One cell to characterize: a name, a fixture builder and its criterion
/// (e.g. C2MOS needs the 90% transition fraction).
struct LibraryCell {
    std::string name;
    std::function<RegisterFixture()> build;
    CriterionOptions criterion;
};

/// DEPRECATED alias: the library flow now takes the unified RunConfig
/// (run_config.hpp); the per-driver bundle carried the same fields.
using LibraryFlowOptions = RunConfig;

struct LibraryRow {
    std::string cell;
    bool success = false;
    std::string failureReason;
    double characteristicClockToQ = 0.0;
    double setupTime = 0.0;  ///< independent (other skew pinned large)
    double holdTime = 0.0;
    std::vector<SkewPoint> contour;  ///< interdependent pairs (may be empty)
    /// How the row's numbers were obtained: empty for a directly
    /// characterized cell, "traced" / "surrogate" for rows exported from a
    /// corner family (corner_family.hpp). Carried through the store and
    /// emitted as a vendor attribute in Liberty-lite when non-empty.
    std::string provenance;
    /// The contour trace's incident log (empty when contours are off or the
    /// row failed before tracing); serialized with the row.
    TraceDiagnostics diagnostics;
    SimStats stats;
};

/// Rows in cell order plus the merged batch cost.
using LibraryResult = BatchResult<LibraryRow>;

/// Characterizes every cell; failures are reported per row, never thrown.
/// Cells run in parallel on config.parallel.threads workers (0 = hardware
/// concurrency); rows, contours and counter totals are byte-identical for
/// any thread count since each cell builds its own fixture and problem.
LibraryResult characterizeLibrary(const std::vector<LibraryCell>& cells,
                                  const RunConfig& config = {});

/// Writes the Liberty-lite report. Throws Error when the file cannot be
/// written.
void writeLibertyLite(const std::vector<LibraryRow>& rows,
                      const std::string& path,
                      const std::string& libraryName = "shtrace_chz");

}  // namespace shtrace
