// shtrace -- seed search for the first curve point (paper Fig. 7).
//
// With the hold skew pinned very large, the setup time becomes independent
// of it; bracket the setup skew between a latch-pass value and a latch-fail
// value, shrink the bracket by coarse bisection until it is inside MPNR's
// convergence basin, and hand the midpoint to the tracer as its seed.
#pragma once

#include "shtrace/chz/h_function.hpp"
#include "shtrace/measure/surface.hpp"

namespace shtrace {

struct SeedOptions {
    double holdSkewLarge = 1.5e-9;  ///< pinned hold skew during seeding
    double setupLo = 10e-12;        ///< initial bracket (will be expanded
    double setupHi = 1.5e-9;        ///<   outward if it does not straddle)
    double bracketTarget = 20e-12;  ///< stop bisecting at this interval width
    int maxBisections = 40;
    int maxExpansions = 8;
};

struct SeedResult {
    bool found = false;
    SkewPoint seed;          ///< midpoint of the final bracket, at large hold
    double bracketLo = 0.0;  ///< fail side (latch misses the deadline)
    double bracketHi = 0.0;  ///< pass side (latch makes the deadline)
    int evaluations = 0;     ///< transients spent
};

/// `passSign`: +1 when a successful latch gives h > 0 (rising output),
/// -1 for falling outputs (see CharacterizationProblem::passSign()).
SeedResult findSeedPoint(const HFunction& h, double passSign,
                         const SeedOptions& options = {},
                         SimStats* stats = nullptr);

}  // namespace shtrace
