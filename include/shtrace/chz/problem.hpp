// shtrace -- end-to-end characterization problem setup.
//
// Wraps a RegisterFixture and reproduces the paper's Section IV procedure:
//
//  1. simulate once with very large setup and hold skews;
//  2. find t_c, the time the output crosses the criterion threshold r
//     (50% of the swing for TSPC, 90% for C2MOS);
//  3. characteristic clock-to-Q = t_c - (50% point of the active edge);
//  4. degraded clock-to-Q = (1 + degradation) * characteristic;
//  5. t_f = active-edge midpoint + degraded clock-to-Q.
//
// The pair (t_f, r) then defines h(tau_s, tau_h) = c^T x(t_f) - r, whose
// zero set is the constant-clock-to-Q contour. The DC operating point x0 is
// computed once and shared by every subsequent transient (the paper's fixed
// initial condition, which is what makes m(t0) = 0 valid).
#pragma once

#include <memory>
#include <optional>

#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/h_function.hpp"
#include "shtrace/linalg/linear_solver.hpp"
#include "shtrace/measure/clock_to_q.hpp"

namespace shtrace {

struct CriterionOptions {
    double transitionFraction = 0.5;  ///< r = qInitial + frac * swing
    double degradation = 0.10;        ///< clock-to-Q pushout defining the contour
    double referenceSetupSkew = 2e-9;   ///< "very large" skews for t_c
    double referenceHoldSkew = 2e-9;
    double observationWindow = 3e-9;  ///< simulate to edge + window for t_c
};

struct SimulationRecipe {
    IntegrationMethod method = IntegrationMethod::Trapezoidal;
    double dtNominal = 10e-12;  ///< fixed-grid step target
    NewtonOptions newton;
    double gmin = 1e-12;
    /// Chord-Newton LU reuse in every transient this recipe drives (see
    /// TransientOptions::jacobianReuse). Part of the store cache key.
    bool jacobianReuse = true;
    /// Linear-algebra backend for every factor/solve this recipe drives.
    /// Auto resolves per circuit size (docs/LINALG.md); part of the store
    /// cache key.
    LinalgBackend linalg = LinalgBackend::Auto;
    /// SoA-batched MOSFET evaluation in every assembly pass (bit-identical
    /// to the scalar path; part of the store cache key).
    bool batchDeviceEval = false;
};

class CharacterizationProblem {
public:
    /// Computes the criterion immediately (one reference transient + one DC
    /// solve). Throws NumericalError when the reference run never crosses
    /// the threshold (the register does not latch at huge skews: a broken
    /// fixture).
    CharacterizationProblem(const RegisterFixture& fixture,
                            CriterionOptions criterion = {},
                            SimulationRecipe recipe = {},
                            SimStats* stats = nullptr);

    const RegisterFixture& fixture() const { return fixture_; }
    const HFunction& h() const { return *h_; }

    double characteristicClockToQ() const { return characteristicC2Q_; }
    double degradedClockToQ() const { return degradedC2Q_; }
    double tc() const { return tc_; }
    double tf() const { return h_->tf(); }
    double r() const { return h_->r(); }
    /// True when the measured Q transition is rising (polarity for seeding
    /// and pass/fail tests: a passing latch has passSign()*h > 0).
    bool risingOutput() const { return spec_.risingOutput(); }
    double passSign() const { return risingOutput() ? 1.0 : -1.0; }

    const Vector& initialCondition() const { return x0_; }
    const ClockToQSpec& clockToQSpec() const { return spec_; }

    /// Measures clock-to-Q at the given skews (full stored transient).
    std::optional<double> measureClockToQAt(double setupSkew, double holdSkew,
                                            SimStats* stats = nullptr) const;

private:
    const RegisterFixture& fixture_;
    CriterionOptions criterion_;
    SimulationRecipe recipe_;
    ClockToQSpec spec_;
    Vector x0_;
    double tc_ = 0.0;
    double characteristicC2Q_ = 0.0;
    double degradedC2Q_ = 0.0;
    std::unique_ptr<HFunction> h_;
};

}  // namespace shtrace
