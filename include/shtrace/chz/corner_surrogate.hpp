// shtrace -- cross-corner contour surrogate math.
//
// SetupKit-style corner collapsing (PAPERS.md, arXiv:2512.00044): trace
// full Euler-Newton contours only at a few anchor corners of the PVT
// cube, resample each contour to a fixed set of arc-length control
// points, and interpolate those control points over the normalized PVT
// axes with a polyharmonic RBF (phi(r) = r^3) plus a linear polynomial
// tail. The tail gives exact reproduction of contour families that vary
// linearly across the cube, so the surrogate's leave-one-out error is a
// meaningful acquisition signal rather than kernel artifact. The driver
// (corner_family.hpp) owns the active-learning loop; this header owns
// the geometry: grids, normalization, donor selection, resampling, and
// the interpolant itself.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "shtrace/cells/mos_library.hpp"
#include "shtrace/linalg/lu.hpp"
#include "shtrace/measure/surface.hpp"

namespace shtrace {

/// One point of the PVT cube in raw axis coordinates. `process` is the
/// conventional corner coordinate: -1 = SS, 0 = TT, +1 = FF; fractional
/// and mildly extrapolated values blend the library corners linearly.
struct PvtPoint {
    double process = 0.0;
    double vdd = 2.5;
    double temperatureC = 27.0;
};

/// Synthesizes a ProcessCorner at an arbitrary cube point: piecewise
/// linear blend of the SS/TT/FF library corners along `process`
/// (extrapolating the end segments beyond [-1, 1]), then the standard
/// temperature derating, then the explicit vdd override. The name
/// encodes the coordinates (e.g. "P+0.50/V2.400/T+085"), so sweep rows
/// and store labels are self-describing.
ProcessCorner cornerAtPvt(const PvtPoint& point);

/// A rectangular PVT grid: the cross product of three sorted axes.
/// Corners are indexed process-major: index = (ip*nv + iv)*nt + it --
/// the same order `corners()` returns, which exhaustive equivalence
/// tests rely on.
struct PvtAxes {
    std::vector<double> process{0.0};
    std::vector<double> vdd{2.5};
    std::vector<double> temperatureC{27.0};

    /// Throws Error unless every axis is non-empty and strictly
    /// ascending.
    void validate() const;

    std::size_t cornerCount() const {
        return process.size() * vdd.size() * temperatureC.size();
    }
    PvtPoint at(std::size_t index) const;

    /// Maps a point into [0,1]^3 by the axis spans. A degenerate axis
    /// (single value) contributes coordinate 0 so distances and the
    /// interpolant ignore it.
    std::array<double, 3> normalized(const PvtPoint& point) const;

    /// The full grid as synthesized corners, in index order.
    std::vector<ProcessCorner> corners() const;

    /// The cube vertices plus the (index-)center corner, deduplicated,
    /// ascending. These are the default surrogate anchors.
    std::vector<std::size_t> anchorIndices() const;
};

/// Euclidean distance between two points in the axes' normalized space.
double normalizedPvtDistance(const PvtAxes& axes, const PvtPoint& a,
                             const PvtPoint& b);

/// The candidate nearest to `target` in normalized PVT space; ties break
/// toward the smaller corner index, so donor selection is deterministic
/// whatever order candidates were traced in. Throws Error on an empty
/// candidate list.
std::size_t nearestCornerIndex(const PvtAxes& axes, std::size_t target,
                               const std::vector<std::size_t>& candidates);

/// Resamples a polyline to exactly `samples` points equally spaced in
/// arc length (endpoints preserved). A single-point or zero-length
/// contour replicates its point. Throws Error on an empty contour,
/// samples < 2, or non-finite coordinates.
std::vector<SkewPoint> resampleByArcLength(
    const std::vector<SkewPoint>& contour, std::size_t samples);

/// Interpolates arc-length-resampled contours (and arbitrary per-node
/// scalars) over normalized PVT coordinates.
///
/// Kernel: phi(r) = r^3 with a linear tail over the coordinates that
/// actually vary across the fitted nodes; the saddle-point system is
/// solved by dense partial-pivot LU. If the full system is singular
/// (e.g. too few nodes for the tail) the fit degrades deterministically:
/// constant-only tail, then tail-free RBF, then nearest-node lookup.
class CornerSurrogate {
public:
    /// `contours[i]` is the resampled contour traced at `nodes[i]`; all
    /// contours must share one control-point count. Throws Error on
    /// size mismatches, empty input, or non-finite values.
    void fit(std::vector<std::array<double, 3>> nodes,
             std::vector<std::vector<SkewPoint>> contours);

    bool fitted() const { return !nodes_.empty(); }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t controlPoints() const { return controlPoints_; }

    /// The interpolated contour at a normalized coordinate.
    std::vector<SkewPoint> predict(const std::array<double, 3>& x) const;

    /// Interpolates one scalar per fitted node with the same kernel and
    /// tail (reusing the factored fit matrix); used to propagate
    /// leave-one-out errors from the anchors to untraced corners.
    double predictScalar(const std::array<double, 3>& x,
                         const std::vector<double>& nodeValues) const;

    /// Per-node leave-one-out cross-validation error: refit without node
    /// j, predict at node j, report the max control-point distance to
    /// the held-out contour. With fewer than 3 nodes there is nothing to
    /// cross-validate; errors are 0.
    std::vector<double> looErrors() const;

private:
    // One fitted interpolant over a fixed node set: the factored saddle
    // matrix plus per-output weight columns.
    struct Model {
        std::vector<std::array<double, 3>> nodes;
        std::vector<int> tailDims;  // varying dims, subset of {0,1,2}
        // Quadratic tail terms x[a]*x[b] (a <= b, varying dims only);
        // populated only when the node set is rich enough to support them.
        std::vector<std::array<int, 2>> quadTerms;
        bool constantTail = false;  // the leading all-ones tail column
        bool nearestOnly = false;   // last-resort fallback
        LuFactorization lu;         // factored saddle matrix
        std::size_t rows = 0;       // nodes + tail columns
        // weights[c] holds the `rows` solution entries for output c.
        std::vector<std::vector<double>> weights;
    };

    static Model buildModel(const std::vector<std::array<double, 3>>& nodes,
                            const std::vector<std::vector<double>>& outputs);
    static double evaluateModel(const Model& model, std::size_t output,
                                const std::array<double, 3>& x);
    static std::vector<double> solveWeights(const Model& model,
                                            const std::vector<double>& values);

    std::vector<std::array<double, 3>> nodes_;
    std::vector<std::vector<SkewPoint>> contours_;
    std::size_t controlPoints_ = 0;
    // outputs_[c][i]: control coordinate c (x0,y0,x1,y1,...) at node i.
    std::vector<std::vector<double>> outputs_;
    Model model_;
};

}  // namespace shtrace
