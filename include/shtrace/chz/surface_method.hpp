// shtrace -- brute-force output-surface baseline (paper Section I / IV).
//
// The prevailing industrial flow the paper competes with: run one transient
// per (setup skew, hold skew) grid point to build the output surface at
// t_f, then intersect with the plane at height r (marching squares) to get
// the constant-clock-to-Q contour. Cost: O(n^2) transients for n contour
// points; accuracy limited by grid interpolation.
#pragma once

#include <functional>

#include "shtrace/cells/register_fixture.hpp"
#include "shtrace/chz/h_function.hpp"
#include "shtrace/chz/run_config.hpp"
#include "shtrace/measure/contour.hpp"

namespace shtrace {

struct SurfaceMethodOptions {
    int setupPoints = 40;
    int holdPoints = 40;
    double setupMin = 50e-12;
    double setupMax = 500e-12;
    double holdMin = 50e-12;
    double holdMax = 500e-12;
};

struct SurfaceMethodResult {
    OutputSurface surface;
    /// Level-set polylines at the criterion height r.
    std::vector<ContourPolyline> contours;
    int transientCount = 0;
    /// Cost of the grid transients (the criterion setup of per-worker
    /// problems in the parallel overload is excluded, so totals are
    /// byte-identical for any thread count).
    SimStats stats;
};

/// Runs the full grid (setupPoints x holdPoints transients) and extracts
/// the r-level contour. Serial: evaluating h retunes the fixture's shared
/// data pulse, so a single HFunction cannot be driven from several
/// threads -- use the fixture-source overload below to parallelize.
SurfaceMethodResult runSurfaceMethod(const HFunction& h,
                                     const SurfaceMethodOptions& options = {},
                                     SimStats* stats = nullptr);

/// Builds one identical fixture per worker (the source must be a pure
/// factory returning the same register each call).
using FixtureSource = std::function<RegisterFixture()>;

/// Parallel grid: each worker builds its own fixture + characterization
/// problem from `source` and sweeps whole grid rows, so transients run
/// concurrently without sharing a data pulse. Grid values, contours and
/// counter totals are byte-identical to the serial overload. Throws Error
/// when any grid transient fails (same contract as the serial overload).
SurfaceMethodResult runSurfaceMethod(const FixtureSource& source,
                                     const RunConfig& config,
                                     const SurfaceMethodOptions& options = {});

}  // namespace shtrace
