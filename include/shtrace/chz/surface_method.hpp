// shtrace -- brute-force output-surface baseline (paper Section I / IV).
//
// The prevailing industrial flow the paper competes with: run one transient
// per (setup skew, hold skew) grid point to build the output surface at
// t_f, then intersect with the plane at height r (marching squares) to get
// the constant-clock-to-Q contour. Cost: O(n^2) transients for n contour
// points; accuracy limited by grid interpolation.
#pragma once

#include "shtrace/chz/h_function.hpp"
#include "shtrace/measure/contour.hpp"

namespace shtrace {

struct SurfaceMethodOptions {
    int setupPoints = 40;
    int holdPoints = 40;
    double setupMin = 50e-12;
    double setupMax = 500e-12;
    double holdMin = 50e-12;
    double holdMax = 500e-12;
};

struct SurfaceMethodResult {
    OutputSurface surface;
    /// Level-set polylines at the criterion height r.
    std::vector<ContourPolyline> contours;
    int transientCount = 0;
};

/// Runs the full grid (setupPoints x holdPoints transients) and extracts
/// the r-level contour.
SurfaceMethodResult runSurfaceMethod(const HFunction& h,
                                     const SurfaceMethodOptions& options = {},
                                     SimStats* stats = nullptr);

}  // namespace shtrace
