// shtrace -- structured failure taxonomy for the Euler-Newton tracer.
//
// A traced contour used to come back empty (or truncated) with no record of
// WHY: the tracer conflated "transient blew up" with "corrector diverged"
// and returned nothing a batch driver could report. TraceDiagnostics is the
// flight recorder: every retry, recovery attempt and termination is logged
// as a TraceEvent carrying the offending (tau_s, tau_h), the predictor step
// length in force, and the corrector iteration count, classified by
// TraceEventKind. The record rides on TracedContour, survives store
// round-trips (format v3), and is what `shtrace-store show` and the batch
// drivers surface to the user.
//
// Header-only on purpose: store/serialize.cpp consumes chz types by header
// alone (the static-library link order puts chz before store), so the
// taxonomy must not add chz .o dependencies to the store module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "shtrace/measure/surface.hpp"

namespace shtrace {

/// Why a trace step was retried, recovered, or a direction terminated.
enum class TraceEventKind : std::uint8_t {
    TransientFailed,    ///< the transient under an h-evaluation did not solve
    CorrectorDiverged,  ///< MPNR/arclength ran out of iterations (or wandered)
    GradientVanished,   ///< flat h: no corrector direction (output plateau)
    NonFinite,          ///< NaN/Inf met a guard (state, h, gradient, or step)
    LeftBounds,         ///< the curve exited the characterization window
    BudgetExhausted,    ///< maxPoints reached with the curve still in bounds
    StepUnderflow,      ///< alpha shrank below minStepLength
};

inline constexpr int kTraceEventKindCount = 7;

/// Which stage of traceContour observed the event.
enum class TracePhase : std::uint8_t {
    Seed,      ///< correcting the user's seed onto the curve
    Forward,   ///< direction A (along the seed tangent)
    Backward,  ///< direction B (against it)
};

constexpr const char* toString(TraceEventKind kind) {
    switch (kind) {
        case TraceEventKind::TransientFailed:
            return "TransientFailed";
        case TraceEventKind::CorrectorDiverged:
            return "CorrectorDiverged";
        case TraceEventKind::GradientVanished:
            return "GradientVanished";
        case TraceEventKind::NonFinite:
            return "NonFinite";
        case TraceEventKind::LeftBounds:
            return "LeftBounds";
        case TraceEventKind::BudgetExhausted:
            return "BudgetExhausted";
        case TraceEventKind::StepUnderflow:
            return "StepUnderflow";
    }
    return "?";
}

constexpr const char* toString(TracePhase phase) {
    switch (phase) {
        case TracePhase::Seed:
            return "seed";
        case TracePhase::Forward:
            return "forward";
        case TracePhase::Backward:
            return "backward";
    }
    return "?";
}

/// Inverse of toString(TraceEventKind); `ok` reports whether `name` matched.
inline TraceEventKind traceEventKindFromString(const std::string& name,
                                               bool& ok) {
    ok = true;
    for (int i = 0; i < kTraceEventKindCount; ++i) {
        const auto kind = static_cast<TraceEventKind>(i);
        if (name == toString(kind)) {
            return kind;
        }
    }
    ok = false;
    return TraceEventKind::TransientFailed;
}

/// Inverse of toString(TracePhase); `ok` reports whether `name` matched.
inline TracePhase tracePhaseFromString(const std::string& name, bool& ok) {
    ok = true;
    for (int i = 0; i < 3; ++i) {
        const auto phase = static_cast<TracePhase>(i);
        if (name == toString(phase)) {
            return phase;
        }
    }
    ok = false;
    return TracePhase::Seed;
}

/// One classified incident during a trace.
struct TraceEvent {
    TraceEventKind kind = TraceEventKind::CorrectorDiverged;
    TracePhase phase = TracePhase::Seed;
    SkewPoint at;                ///< offending (tau_s, tau_h)
    double stepLength = 0.0;     ///< predictor alpha in force (s)
    int correctorIterations = 0; ///< iterations the corrector spent
};

/// What happened, in order, while a contour was traced. Where TraceEvent
/// records incidents (things that went wrong), the timeline records the
/// whole story: seeding, every accepted point, and every recovery action,
/// each stamped with a deterministic operation index and -- when span
/// tracing is enabled -- a wall-clock offset.
enum class TimelineEventKind : std::uint8_t {
    SeedFound,      ///< seed bisection located the pass/fail transition
    SeedCorrected,  ///< MPNR pulled the seed exactly onto the curve
    WarmStart,      ///< trace started from a cached contour point instead
    PointAccepted,  ///< corrector converged; point joined the contour
    Retry,          ///< perturbed-predictor retry after a transient failure
    Reseed,         ///< pulled-back re-seed after a gradient plateau
    Halving,        ///< predictor step length alpha was halved
};

inline constexpr int kTimelineEventKindCount = 7;

constexpr const char* toString(TimelineEventKind kind) {
    switch (kind) {
        case TimelineEventKind::SeedFound:
            return "SeedFound";
        case TimelineEventKind::SeedCorrected:
            return "SeedCorrected";
        case TimelineEventKind::WarmStart:
            return "WarmStart";
        case TimelineEventKind::PointAccepted:
            return "PointAccepted";
        case TimelineEventKind::Retry:
            return "Retry";
        case TimelineEventKind::Reseed:
            return "Reseed";
        case TimelineEventKind::Halving:
            return "Halving";
    }
    return "?";
}

/// Inverse of toString(TimelineEventKind); `ok` reports a match.
inline TimelineEventKind timelineEventKindFromString(const std::string& name,
                                                     bool& ok) {
    ok = true;
    for (int i = 0; i < kTimelineEventKindCount; ++i) {
        const auto kind = static_cast<TimelineEventKind>(i);
        if (name == toString(kind)) {
            return kind;
        }
    }
    ok = false;
    return TimelineEventKind::SeedFound;
}

/// One timeline entry. Two clocks on purpose: `opIndex` is the number of
/// h evaluations completed when the event fired -- deterministic across
/// thread counts and reruns, so it is what store round-trip tests compare.
/// `wallNs` is monotonic nanoseconds since the trace started; it is
/// recorded only while obs::enabled() and stays exactly 0.0 otherwise,
/// keeping default-mode store payloads byte-identical run to run.
struct TimelineEvent {
    TimelineEventKind kind = TimelineEventKind::SeedFound;
    TracePhase phase = TracePhase::Seed;
    SkewPoint at;                ///< the (tau_s, tau_h) involved
    std::uint64_t opIndex = 0;   ///< h evaluations completed so far
    double wallNs = 0.0;         ///< ns since trace start; 0 when obs is off
};

/// The ordered incident log of one traceContour call.
struct TraceDiagnostics {
    std::vector<TraceEvent> events;
    /// Ordered whole-trace event log (store format v4). Pre-trace entries
    /// (SeedFound, WarmStart) are prepended by the drivers via
    /// markPreTrace(); everything else is appended in occurrence order.
    std::vector<TimelineEvent> timeline;

    void record(TraceEventKind kind, TracePhase phase, const SkewPoint& at,
                double stepLength, int correctorIterations) {
        events.push_back(
            TraceEvent{kind, phase, at, stepLength, correctorIterations});
    }

    void mark(TimelineEventKind kind, TracePhase phase, const SkewPoint& at,
              std::uint64_t opIndex, double wallNs) {
        timeline.push_back(TimelineEvent{kind, phase, at, opIndex, wallNs});
    }

    /// Inserts a driver-side event (seed search, cache warm start) that
    /// happened before traceContour ran, keeping the log ordered.
    void markPreTrace(TimelineEventKind kind, const SkewPoint& at,
                      std::uint64_t opIndex) {
        timeline.insert(timeline.begin(),
                        TimelineEvent{kind, TracePhase::Seed, at, opIndex,
                                      0.0});
    }

    bool empty() const { return events.empty(); }

    std::size_t count(TraceEventKind kind) const {
        std::size_t n = 0;
        for (const TraceEvent& e : events) {
            if (e.kind == kind) {
                ++n;
            }
        }
        return n;
    }

    /// Why the trace ended/struggled, in one line: "LeftBounds x2,
    /// TransientFailed x1" (kind order, zero counts omitted). Empty string
    /// for an event-free trace.
    std::string summary() const {
        std::ostringstream os;
        bool first = true;
        for (int i = 0; i < kTraceEventKindCount; ++i) {
            const auto kind = static_cast<TraceEventKind>(i);
            const std::size_t n = count(kind);
            if (n == 0) {
                continue;
            }
            if (!first) {
                os << ", ";
            }
            first = false;
            os << toString(kind) << " x" << n;
        }
        return os.str();
    }
};

}  // namespace shtrace
